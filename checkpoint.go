package virtuoso

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/sweepjob"
)

// CheckpointInfo summarises a sweep checkpoint file (see
// Sweep.Checkpoint and docs/sweep-service.md for the file layout).
type CheckpointInfo struct {
	// SpecHash is the generating sweep's fingerprint (Sweep.SpecHash).
	SpecHash string `json:"spec_hash"`
	// Points is the full grid size; Done counts points completed in
	// this file.
	Points int `json:"points"`
	Done   int `json:"done"`
	// Shard is the "i/N" slice the file covers ("" = whole grid).
	Shard string `json:"shard,omitempty"`
	// Torn reports that a damaged tail record was dropped while
	// reading. Resuming repairs the file (the torn point re-runs).
	Torn bool `json:"torn,omitempty"`
}

// ReadCheckpoint loads a checkpoint file's metadata and completed
// Results (sorted by point index). A torn tail record — the signature
// of a crash mid-write — is dropped, reported via Info.Torn, and
// repaired on the next resume.
func ReadCheckpoint(path string) (CheckpointInfo, []Result, error) {
	f, err := sweepjob.ReadFile(path)
	if err != nil {
		return CheckpointInfo{}, nil, err
	}
	info := CheckpointInfo{
		SpecHash: f.Header.SpecHash,
		Points:   f.Header.Points,
		Done:     len(f.Records),
		Shard:    f.Header.Shard,
		Torn:     f.Torn,
	}
	results, err := decodeRecords(path, f.Records)
	if err != nil {
		return CheckpointInfo{}, nil, err
	}
	return info, results, nil
}

// MergeCheckpoints validates shard checkpoint files and combines them
// into the Report an unsharded run of the same sweep would have
// produced: every file must carry the same spec hash and grid size,
// and together they must cover every point exactly once — overlapping
// or gapped shard sets are rejected with the offending points named.
// The merged Report is canonical-identical (Report.CanonicalJSON) to
// the unsharded run's; Wall is zero because host time was spent across
// several processes.
func MergeCheckpoints(paths ...string) (*Report, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("virtuoso: no checkpoint files to merge")
	}
	files := make([]*sweepjob.File, len(paths))
	for i, p := range paths {
		f, err := sweepjob.ReadFile(p)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	ordered, hdr, err := sweepjob.Merge(files)
	if err != nil {
		return nil, err
	}
	rep := &Report{Points: hdr.Points, SpecHash: hdr.SpecHash}
	rep.Results = make([]Result, hdr.Points)
	for i, raw := range ordered {
		if err := json.Unmarshal(raw, &rep.Results[i]); err != nil {
			return nil, fmt.Errorf("virtuoso: merged point %d: %w", i, err)
		}
	}
	return rep, nil
}

// decodeRecords turns raw checkpoint records into Results sorted by
// point index.
func decodeRecords(path string, recs map[int]json.RawMessage) ([]Result, error) {
	idxs := make([]int, 0, len(recs))
	for idx := range recs {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	out := make([]Result, len(idxs))
	for i, idx := range idxs {
		if err := json.Unmarshal(recs[idx], &out[i]); err != nil {
			return nil, fmt.Errorf("virtuoso: checkpoint %s: point %d: %w", path, idx, err)
		}
	}
	return out, nil
}
