// Pagetable study: the Use Case 1 workflow (§7.4) as a library user
// would write it — compare the four page-table designs on one workload
// across two fragmentation levels, reporting walk latency, fault
// latency, and the DRAM interference each design causes.
package main

import (
	"fmt"

	virtuoso "repro"
	"repro/internal/core"
)

func main() {
	virtuoso.SetWorkloadScale(0.1)

	designs := []core.DesignName{
		virtuoso.DesignRadix, virtuoso.DesignECH, virtuoso.DesignHDC, virtuoso.DesignHT,
	}
	frags := []float64{1.00, 0.90} // paper fragmentation levels

	fmt.Println("design  frag   walks     avgPTW   PF-median(ns)  row-conflicts")
	for _, frag := range frags {
		for _, d := range designs {
			cfg := virtuoso.ScaledConfig()
			cfg.Design = d
			cfg.Policy = virtuoso.PolicyTHP
			cfg.FragFree2M = 1 - frag
			cfg.MaxAppInsts = 0 // run the benchmark to completion

			m := virtuoso.New(cfg).Run(virtuoso.WorkloadByName("XS"))
			med := 0.0
			if m.PFLatNs != nil {
				med = m.PFLatNs.Median()
			}
			fmt.Printf("%-7s %.0f%%   %-9d %-8.1f %-14.0f %d\n",
				d, 100*frag, m.Walks, m.AvgPTWLat, med, m.Dram.TotalConflicts())
		}
	}
	fmt.Println("\nExpected shape (paper Fig. 13-15): hash tables shorten walks and")
	fmt.Println("faults vs radix; ECH trades that for DRAM row-buffer interference.")
}
