// Pagetable study: the Use Case 1 workflow (§7.4) as a library user
// would write it — compare the four page-table designs on one workload
// across two fragmentation levels, reporting walk latency, fault
// latency, and the DRAM interference each design causes. Each
// fragmentation level is one Sweep whose four design points run
// concurrently.
package main

import (
	"context"
	"fmt"
	"log"

	virtuoso "repro"
)

func main() {
	designs := []virtuoso.DesignName{
		virtuoso.DesignRadix, virtuoso.DesignECH, virtuoso.DesignHDC, virtuoso.DesignHT,
	}
	frags := []float64{1.00, 0.90} // paper fragmentation levels

	fmt.Println("design  frag   walks     avgPTW   PF-median(ns)  row-conflicts")
	for _, frag := range frags {
		base := virtuoso.ScaledConfig()
		base.Policy = virtuoso.PolicyTHP
		base.FragFree2M = 1 - frag
		base.MaxAppInsts = 0 // run the benchmark to completion

		report, err := (&virtuoso.Sweep{
			Base:      base,
			Workloads: []string{"XS"},
			Designs:   designs,
			Params:    virtuoso.WorkloadParams{Scale: 0.1},
		}).Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}

		for _, r := range report.Results {
			m := r.Metrics
			med := 0.0
			if m.PFLatNs != nil {
				med = m.PFLatNs.Median()
			}
			fmt.Printf("%-7s %.0f%%   %-9d %-8.1f %-14.0f %d\n",
				r.Design, 100*frag, m.Walks, m.AvgPTWLat, med, m.Dram.TotalConflicts())
		}
	}
	fmt.Println("\nExpected shape (paper Fig. 13-15): hash tables shorten walks and")
	fmt.Println("faults vs radix; ECH trades that for DRAM row-buffer interference.")
}
