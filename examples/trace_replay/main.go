// Example trace_replay: record a catalog workload to a compressed trace
// file, inspect it, and replay it through the trace-driven frontend —
// demonstrating that a replayed trace reproduces the live run's metrics
// exactly (the §6.2 ChampSim-style integration).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	virtuoso "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "virtuoso-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bfs.trc.gz")

	// Shared configuration: record and replay must agree on the system
	// (design, policy, seed) for the runs to be comparable.
	cfg := []virtuoso.Option{
		virtuoso.WithScaledConfig(),
		virtuoso.WithDesign(virtuoso.DesignRadix),
		virtuoso.WithPolicy(virtuoso.PolicyTHP),
		virtuoso.WithMaxInstructions(400_000),
		virtuoso.WithSeed(7),
	}

	// Record: a live, fully timed run whose application instruction
	// stream is teed into the trace file as it executes.
	rec, err := virtuoso.Open(append(cfg,
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("BFS"),
	)...)
	if err != nil {
		log.Fatal(err)
	}
	live, info, err := rec.Record(path)
	if err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(path)
	fmt.Printf("recorded %s: %d records, %d insts, %d segments, %d bytes on disk\n",
		info.Workload, info.Records, info.Instructions, info.Segments, st.Size())

	// Replay: the trace file becomes the workload. Setup re-creates the
	// recorded address-space layout; instructions stream from the file.
	rep, err := virtuoso.Open(append(cfg, virtuoso.WithTrace(path))...)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := rep.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("live run  IPC %.4f  cycles %d  minor faults %d\n", live.IPC, live.Cycles, live.MinorFaults)
	fmt.Printf("replayed  IPC %.4f  cycles %d  minor faults %d\n", replayed.IPC, replayed.Cycles, replayed.MinorFaults)
	if live.Cycles == replayed.Cycles && live.IPC == replayed.IPC {
		fmt.Println("replay is deterministic: metrics identical")
	} else {
		fmt.Println("WARNING: replay diverged from the live run")
	}

	// A memory-trace replay of the same file (Ramulator-style): only
	// memory operations are simulated, so it runs faster but reports
	// different timing.
	mem, err := virtuoso.Open(append(cfg,
		virtuoso.WithFrontend(virtuoso.FrontendMemTrace),
		virtuoso.WithTrace(path),
	)...)
	if err != nil {
		log.Fatal(err)
	}
	mm, err := mem.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memtrace  IPC %.4f  cycles %d (memory ops only)\n", mm.IPC, mm.Cycles)
}
