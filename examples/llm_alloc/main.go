// LLM allocation study: Use Case 2 (§7.5) — how physical memory
// allocation policies shape page-fault tail latency during LLM inference
// (the paper's Fig. 16). The four policies run as one Sweep on a worker
// pool; the Configure hook attaches Utopia's RestSeg geometry, which the
// grid axes alone cannot express.
package main

import (
	"context"
	"fmt"
	"log"

	virtuoso "repro"
	"repro/ext"
)

func main() {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 0 // run inference to completion

	sweep := &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"Llama-2-7B"},
		Params:    virtuoso.WorkloadParams{Scale: 0.1},
		Policies: []virtuoso.PolicyName{
			virtuoso.PolicyBuddy, virtuoso.PolicyCRTHP, virtuoso.PolicyARTHP, virtuoso.PolicyUtopia,
		},
		Configure: func(cfg *virtuoso.Config, p virtuoso.Point) error {
			if p.Policy == virtuoso.PolicyUtopia {
				cfg.Design = virtuoso.DesignUtopia
				cfg.UtopiaSegs = []virtuoso.UtopiaSegSpec{{SizeBytes: 32 * ext.MB, Ways: 16, PageSize: ext.Page4K}}
			}
			return nil
		},
	}

	report, err := sweep.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	labels := map[virtuoso.PolicyName]string{
		virtuoso.PolicyBuddy:  "BD (4K buddy)",
		virtuoso.PolicyCRTHP:  "CR-THP",
		virtuoso.PolicyARTHP:  "AR-THP",
		virtuoso.PolicyUtopia: "UT-32MB/16w",
	}
	fmt.Println("policy         median(ns)  p99(ns)    max(ns)    total(µs)")
	for _, r := range report.Results {
		s := r.Metrics.PFLatNs
		fmt.Printf("%-14s %-11.0f %-10.0f %-10.0f %.0f\n",
			labels[r.Policy], s.Median(), s.Percentile(99), s.Max(), s.Sum()/1e3)
	}
	fmt.Println("\nExpected shape (paper Fig. 16): reservation-based THP matches BD's")
	fmt.Println("median but grows a huge tail; Utopia's hash placement is fastest.")
}
