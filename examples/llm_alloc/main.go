// LLM allocation study: Use Case 2 (§7.5) — how physical memory
// allocation policies shape page-fault tail latency during LLM inference
// (the paper's Fig. 16).
package main

import (
	"fmt"

	virtuoso "repro"
	"repro/internal/core"
	"repro/internal/mem"
)

func main() {
	virtuoso.SetWorkloadScale(0.1)

	type policy struct {
		label string
		mut   func(*core.Config)
	}
	policies := []policy{
		{"BD (4K buddy)", func(c *core.Config) { c.Policy = virtuoso.PolicyBuddy }},
		{"CR-THP", func(c *core.Config) { c.Policy = virtuoso.PolicyCRTHP }},
		{"AR-THP", func(c *core.Config) { c.Policy = virtuoso.PolicyARTHP }},
		{"UT-32MB/16w", func(c *core.Config) {
			c.Design = virtuoso.DesignUtopia
			c.Policy = virtuoso.PolicyUtopia
			c.UtopiaSegs = []core.UtopiaSegSpec{{SizeBytes: 32 * mem.MB, Ways: 16, PageSize: mem.Page4K}}
		}},
	}

	fmt.Println("policy         median(ns)  p99(ns)    max(ns)    total(µs)")
	for _, p := range policies {
		cfg := virtuoso.ScaledConfig()
		cfg.MaxAppInsts = 0
		p.mut(&cfg)
		m := virtuoso.New(cfg).Run(virtuoso.WorkloadByName("Llama-2-7B"))
		s := m.PFLatNs
		fmt.Printf("%-14s %-11.0f %-10.0f %-10.0f %.0f\n",
			p.label, s.Median(), s.Percentile(99), s.Max(), s.Sum()/1e3)
	}
	fmt.Println("\nExpected shape (paper Fig. 16): reservation-based THP matches BD's")
	fmt.Println("median but grows a huge tail; Utopia's hash placement is fastest.")
}
