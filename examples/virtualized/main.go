// Virtualized simulation (§6.1): Virtuoso spawns two MimicOS instances —
// a guest kernel and a hypervisor — and the MMU performs two-dimensional
// nested walks. Guest page faults run guest kernel code; backing a guest
// frame for the first time raises an EPT violation handled by the
// hypervisor kernel. Both instruction streams are injected into the core.
package main

import (
	"fmt"
	"log"

	virtuoso "repro"
	"repro/ext"
)

func main() {
	cfg := virtuoso.DefaultVirtualizedConfig()
	cfg.GuestPhysBytes = 512 * ext.MB
	cfg.HostPhysBytes = 1 * ext.GB

	w, err := virtuoso.NamedWorkloadWith("Hadamard", virtuoso.WorkloadParams{Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}
	v := virtuoso.NewVirtualizedSystem(cfg)
	gf, hf, kinsts, ipc := v.Run(w, 500_000)

	fmt.Println("== Virtualized execution: guest Linux on a MimicOS hypervisor ==")
	fmt.Printf("guest page faults     %d (guest kernel streams injected)\n", gf)
	fmt.Printf("EPT violations        %d (hypervisor kernel streams injected)\n", hf)
	fmt.Printf("kernel instructions   %d across both kernels\n", kinsts)
	fmt.Printf("nested walk latency   %.1f cycles average\n", v.MMU.Stats().AvgWalkLatency())
	fmt.Printf("guest IPC             %.3f\n", ipc)
	fmt.Println("\nThe nested TLB and host-translation cache keep the 2D walk cost")
	fmt.Println("far below the worst-case 24 accesses of radix-over-radix.")
}
