// Quickstart: build the default Virtuoso system (Table 4), run one
// long-running workload, and print the headline metrics. This is the
// 30-second tour of the public API.
package main

import (
	"fmt"

	virtuoso "repro"
)

func main() {
	// Footprints scale so the example finishes in seconds.
	virtuoso.SetWorkloadScale(0.1)

	cfg := virtuoso.ScaledConfig()
	cfg.MaxAppInsts = 1_000_000

	sys := virtuoso.New(cfg)
	m := sys.Run(virtuoso.WorkloadByName("BFS"))

	fmt.Println("== Virtuoso quickstart: BFS under radix + Linux-like THP ==")
	fmt.Printf("IPC                 %.3f\n", m.IPC)
	fmt.Printf("L2 TLB MPKI         %.2f\n", m.L2TLBMPKI)
	fmt.Printf("avg PTW latency     %.1f cycles over %d walks\n", m.AvgPTWLat, m.Walks)
	fmt.Printf("minor faults        %d (%.1f%% of cycles in the fault handler)\n",
		m.MinorFaults, 100*m.AllocationFraction())
	fmt.Printf("kernel instructions %d injected over %d events\n",
		m.KernelInsts, m.FunctionalMessages)
	if m.PFLatNs != nil && m.PFLatNs.Len() > 0 {
		fmt.Printf("fault latency       median %.0f ns, p99 %.0f ns\n",
			m.PFLatNs.Median(), m.PFLatNs.Percentile(99))
	}
}
