// Quickstart: open the scaled Virtuoso system (Table 4, shrunk to
// finish in seconds), run one long-running workload, and print the
// headline metrics. This is the 30-second tour of the public API.
package main

import (
	"fmt"
	"log"

	virtuoso "repro"
)

func main() {
	sess, err := virtuoso.Open(
		virtuoso.WithWorkloadScale(0.1), // footprints scale so the example finishes in seconds
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkload("BFS"),
		virtuoso.WithMaxInstructions(1_000_000),
	)
	if err != nil {
		log.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Virtuoso quickstart: BFS under radix + Linux-like THP ==")
	fmt.Printf("IPC                 %.3f\n", m.IPC)
	fmt.Printf("L2 TLB MPKI         %.2f\n", m.L2TLBMPKI)
	fmt.Printf("avg PTW latency     %.1f cycles over %d walks\n", m.AvgPTWLat, m.Walks)
	fmt.Printf("minor faults        %d (%.1f%% of cycles in the fault handler)\n",
		m.MinorFaults, 100*m.AllocationFraction())
	fmt.Printf("kernel instructions %d injected over %d events\n",
		m.KernelInsts, m.FunctionalMessages)
	if m.PFLatNs != nil && m.PFLatNs.Len() > 0 {
		fmt.Printf("fault latency       median %.0f ns, p99 %.0f ns\n",
			m.PFLatNs.Median(), m.PFLatNs.Percentile(99))
	}
}
