// Custom OS module: the §4.1 "ease of development" story — a researcher
// adds a new physical memory allocation policy to MimicOS in a few dozen
// lines of high-level code (no kernel expertise required) and evaluates
// it against the stock policies.
//
// The policy here is a toy "color-aware" allocator: it round-robins 4 KB
// frames across DRAM banks to spread row-buffer pressure.
package main

import (
	"fmt"
	"log"

	virtuoso "repro"
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/mimicos"
)

// bankColorPolicy allocates 4 KB frames, skipping frames until the next
// one lands on the desired DRAM bank color.
type bankColorPolicy struct {
	colors uint64
	next   uint64
	parked []mem.PAddr // frames skipped while hunting for a color
}

// Name implements mimicos.AllocPolicy.
func (p *bankColorPolicy) Name() string { return "bank-color" }

// AllocAnon implements mimicos.AllocPolicy.
func (p *bankColorPolicy) AllocAnon(k *mimicos.Kernel, proc *mimicos.Process, vma *mimicos.VMA, va mem.VAddr, tr *instrument.Tracer, now uint64) (mem.PAddr, mem.PageSize, bool, bool, bool) {
	exit := tr.Enter("bank_color_alloc")
	defer exit()
	tr.ALU(60)
	want := p.next % p.colors
	p.next++
	for tries := 0; tries < 32; tries++ {
		frame, ok := k.Phys.Alloc4K()
		if !ok {
			break
		}
		if (uint64(frame)>>13)%p.colors == want {
			// Return parked frames to the buddy allocator.
			for _, f := range p.parked {
				k.Phys.Free(f, 1)
			}
			p.parked = p.parked[:0]
			return frame, mem.Page4K, false, false, true
		}
		p.parked = append(p.parked, frame)
	}
	for _, f := range p.parked {
		k.Phys.Free(f, 1)
	}
	p.parked = p.parked[:0]
	frame, ok := k.Phys.Alloc4K()
	return frame, mem.Page4K, false, false, ok
}

func main() {
	run := func(label string, install func(*virtuoso.System)) {
		sess, err := virtuoso.Open(
			virtuoso.WithScaledConfig(),
			virtuoso.WithPolicy(virtuoso.PolicyBuddy),
			virtuoso.WithMaxInstructions(800_000),
			virtuoso.WithWorkloadScale(0.08),
			virtuoso.WithWorkload("XS"),
		)
		if err != nil {
			log.Fatal(err)
		}
		if install != nil {
			install(sess.System())
		}
		m, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s IPC %.3f  row-hit %.1f%%  conflicts %-8d  PF median %.0f ns\n",
			label, m.IPC, 100*m.Dram.RowHitRate(), m.Dram.TotalConflicts(), m.PFLatNs.Median())
	}

	fmt.Println("== Developing a new OS allocation policy against MimicOS ==")
	run("buddy (BD)", nil)
	run("bank-color", func(s *virtuoso.System) {
		s.OS.SetPolicy(&bankColorPolicy{colors: 8})
	})
	fmt.Println("\nA new OS module is a single Go type implementing AllocPolicy —")
	fmt.Println("its instruction stream is recorded and injected like any kernel code.")
}
