// Custom OS module: the §4.1 "ease of development" story — a researcher
// adds a new physical memory allocation policy to MimicOS in a few dozen
// lines of high-level code (no kernel expertise required) and evaluates
// it against the stock policies.
//
// The policy here is a toy "color-aware" allocator: it round-robins 4 KB
// frames across DRAM banks to spread row-buffer pressure. It is written
// entirely against the public extension API — the root package plus
// repro/ext — and registered under the name "bank-color", which makes it
// selectable like any built-in: WithPolicy, Sweep.Policies, and the
// cmd/virtuoso -policy flag all accept it.
package main

import (
	"fmt"
	"log"

	virtuoso "repro"
	"repro/ext"
)

// bankColorPolicy allocates 4 KB frames, skipping frames until the next
// one lands on the desired DRAM bank color.
type bankColorPolicy struct {
	colors uint64
	next   uint64
	parked []ext.PAddr // frames skipped while hunting for a color
}

// Name implements ext.AllocPolicy.
func (p *bankColorPolicy) Name() string { return "bank-color" }

// AllocAnon implements ext.AllocPolicy.
func (p *bankColorPolicy) AllocAnon(k ext.Kernel, proc ext.Process, vma ext.VMA, va ext.VAddr, tr ext.Tracer, now uint64) ext.AllocDecision {
	exit := tr.Enter("bank_color_alloc")
	defer exit()
	tr.ALU(60)
	want := p.next % p.colors
	p.next++
	for tries := 0; tries < 32; tries++ {
		frame, ok := k.Alloc4K()
		if !ok {
			break
		}
		if (uint64(frame)>>13)%p.colors == want {
			// Return parked frames to the buddy allocator.
			for _, f := range p.parked {
				k.Free(f, 1)
			}
			p.parked = p.parked[:0]
			return ext.AllocDecision{Frame: frame, Size: ext.Page4K, OK: true}
		}
		p.parked = append(p.parked, frame)
	}
	for _, f := range p.parked {
		k.Free(f, 1)
	}
	p.parked = p.parked[:0]
	frame, ok := k.Alloc4K()
	return ext.AllocDecision{Frame: frame, Size: ext.Page4K, OK: ok}
}

func init() {
	// Registered once, the policy is addressable by name everywhere a
	// built-in is. The constructor runs per simulated system, so
	// concurrent sweep points never share the allocator's state.
	ext.MustRegisterPolicy("bank-color", func() ext.AllocPolicy {
		return &bankColorPolicy{colors: 8}
	})
}

func main() {
	run := func(policy virtuoso.PolicyName, label string) {
		sess, err := virtuoso.Open(
			virtuoso.WithScaledConfig(),
			virtuoso.WithPolicy(policy),
			virtuoso.WithMaxInstructions(800_000),
			virtuoso.WithWorkloadScale(0.08),
			virtuoso.WithWorkload("XS"),
		)
		if err != nil {
			log.Fatal(err)
		}
		m, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s IPC %.3f  row-hit %.1f%%  conflicts %-8d  PF median %.0f ns\n",
			label, m.IPC, 100*m.Dram.RowHitRate(), m.Dram.TotalConflicts(), m.PFLatNs.Median())
	}

	fmt.Println("== Developing a new OS allocation policy against MimicOS ==")
	fmt.Printf("known policies: %v\n\n", virtuoso.KnownPolicies())
	run(virtuoso.PolicyBuddy, "buddy (BD)")
	run("bank-color", "bank-color")
	fmt.Println("\nA new OS module is a single Go type implementing ext.AllocPolicy —")
	fmt.Println("its instruction stream is recorded and injected like any kernel code,")
	fmt.Println("and the registered name works in sweeps and on the CLI too.")
}
