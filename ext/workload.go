package ext

import (
	"repro/internal/mimicos"
	"repro/internal/registry"
	"repro/internal/workloads"
)

// Workload vocabulary, re-exported so custom workloads are built
// without naming internal packages.
type (
	// Workload is a benchmark: an address-space layout plus a
	// deterministic instruction stream over it.
	Workload = workloads.Workload
	// WorkloadParams configures workload construction (footprint
	// scale, long-running iteration count); the zero value means the
	// library defaults.
	WorkloadParams = workloads.Params
	// Step is one phase of a workload's step program.
	Step = workloads.Step
	// StepKind enumerates the phase kinds.
	StepKind = workloads.StepKind
	// Class separates long-running from short-running workloads.
	Class = workloads.Class
)

// Step kinds and workload classes.
const (
	// StepTouch walks [Base, Base+Size) at Stride with stores
	// (first-touch allocation).
	StepTouch = workloads.StepTouch
	// StepSeq streams over the region with loads at Stride, Count ops.
	StepSeq = workloads.StepSeq
	// StepRand performs Count accesses at pseudo-random offsets.
	StepRand = workloads.StepRand
	// StepChase performs Count dependent pointer-chase hops.
	StepChase = workloads.StepChase
	// StepALU burns Count register-only instructions.
	StepALU = workloads.StepALU

	// LongRunning workloads amortise allocation and are dominated by
	// address translation.
	LongRunning = workloads.LongRunning
	// ShortRunning workloads are dominated by allocation.
	ShortRunning = workloads.ShortRunning
)

// NewWorkload builds a custom workload from public-handle setup and
// program functions: setup lays out the address space through
// Kernel.Mmap (recording bases with w.SetBase), and program returns the
// step program generating the instruction stream. The result runs
// through virtuoso.WithCustomWorkload directly, or by name after
// RegisterWorkload.
func NewWorkload(name string, class Class, footprint uint64,
	setup func(w *Workload, k Kernel, pid int),
	program func(w *Workload) []Step) *Workload {
	return workloads.Custom(name, class, footprint,
		func(w *workloads.Workload, k *mimicos.Kernel, pid int) { setup(w, Kernel{k}, pid) },
		program)
}

// RegisterWorkload registers a workload constructor under name, making
// it addressable like a catalog workload: WithWorkload, WithProcesses
// mixes, Sweep.Workloads / Sweep.Mixes, trace recording, and the
// -workload CLI flag. The constructor receives the session's (or sweep
// point's) construction parameters and must return a fresh *Workload
// per call — workload state is mutated during a run and is never shared
// between concurrent points. Registration fails on an empty or
// duplicate name, or one that shadows a catalog workload under any of
// its accepted spellings ("BFS", "bfs", "graphbig-bfs", ...). Unlike
// the forgiving catalog matching, registered names are looked up
// exactly as registered.
func RegisterWorkload(name string, ctor func(WorkloadParams) (*Workload, error)) error {
	return registry.RegisterWorkload(name, ctor)
}

// MustRegisterWorkload is RegisterWorkload, panicking on error.
func MustRegisterWorkload(name string, ctor func(WorkloadParams) (*Workload, error)) {
	if err := RegisterWorkload(name, ctor); err != nil {
		panic(err)
	}
}
