// Package ext is the public extension surface of the Virtuoso
// reproduction: it lets an out-of-module consumer add a physical-memory
// allocation policy, an address-translation design, or a workload to
// the simulator — by name, in a few dozen lines, without touching
// internal packages (the §4.1 "ease of development" claim made into a
// stable API).
//
// Components register once, usually at init time, and are then usable
// everywhere a built-in is: virtuoso.Open(virtuoso.WithPolicy(...)),
// Sweep.Policies / Sweep.Designs / Sweep.Workloads grid axes,
// virtuoso.KnownPolicies / KnownDesigns, trace recording, and the
// cmd/virtuoso -policy / -design / -workload flags.
//
//	func init() {
//		ext.MustRegisterPolicy("bank-color", func() ext.AllocPolicy {
//			return &bankColorPolicy{colors: 8}
//		})
//	}
//	sess, _ := virtuoso.Open(virtuoso.WithPolicy("bank-color"), ...)
//
// The handle types (Kernel, Process, VMA, Tracer) are thin public
// wrappers over the corresponding MimicOS internals: they expose the
// same instrumented helpers the built-in components use, so a custom
// policy's kernel work is recorded and injected into the core model
// exactly like stock kernel code. See docs/extending.md for worked
// examples.
package ext

import (
	"repro/internal/instrument"
	"repro/internal/mem"
	"repro/internal/mimicos"
	"repro/internal/mmu"
	"repro/internal/registry"
	"repro/internal/tier"
)

// Address and size vocabulary, re-exported so extension code never
// names an internal package.
type (
	// VAddr is a virtual address in the simulated address space.
	VAddr = mem.VAddr
	// PAddr is a physical address in the simulated memory.
	PAddr = mem.PAddr
	// PageSize selects a translation granule (Page4K, Page2M, Page1G).
	PageSize = mem.PageSize
)

// Size units and page sizes.
const (
	KB = mem.KB
	MB = mem.MB
	GB = mem.GB

	Page4K = mem.Page4K
	Page2M = mem.Page2M
	Page1G = mem.Page1G
)

// Tracer records the instruction stream of the kernel routine currently
// executing — the public handle over the §4.2 instrumentation layer.
// Everything a custom component records is injected into the simulated
// core and charged its real latency and cache/DRAM interference.
type Tracer struct{ t *instrument.Tracer }

// Enter marks entry into a named kernel routine and returns the
// matching exit function (defer it). Each routine gets its own
// synthetic code region, so custom kernel code exercises the I-cache
// realistically.
func (tr Tracer) Enter(name string) func() { return tr.t.Enter(name) }

// ALU records n register-only instructions.
func (tr Tracer) ALU(n uint32) { tr.t.ALU(n) }

// Branch records n branches.
func (tr Tracer) Branch(n uint32) { tr.t.Branch(n) }

// Load records a kernel load at physical address pa.
func (tr Tracer) Load(pa PAddr) { tr.t.Load(pa) }

// Store records a kernel store at physical address pa.
func (tr Tracer) Store(pa PAddr) { tr.t.Store(pa) }

// Atomic records a locked read-modify-write at pa (spinlock
// acquisition, refcounts).
func (tr Tracer) Atomic(pa PAddr) { tr.t.Atomic(pa) }

// Delay records a pipeline stall of the given cycles (device time).
func (tr Tracer) Delay(cycles uint64) { tr.t.Delay(cycles) }

// ZeroRange records clearing [pa, pa+bytes): one cache-line store per
// 64 B — the dominant cost of huge-page allocation.
func (tr Tracer) ZeroRange(pa PAddr, bytes uint64) { tr.t.ZeroRange(pa, bytes) }

// CopyRange records copying bytes from src to dst, one cache line at a
// time.
func (tr Tracer) CopyRange(dst, src PAddr, bytes uint64) { tr.t.CopyRange(dst, src, bytes) }

// TouchObject records a read-modify access pattern over a kernel
// object: loads then stores cache lines starting at pa.
func (tr Tracer) TouchObject(pa PAddr, loads, stores int) { tr.t.TouchObject(pa, loads, stores) }

// Kernel is the public handle over a MimicOS instance a custom
// component operates on.
type Kernel struct{ k *mimicos.Kernel }

// Alloc4K takes one 4 KB frame straight from the buddy allocator
// (functional only — no kernel work charged; pair with Tracer calls).
func (k Kernel) Alloc4K() (PAddr, bool) { return k.k.Phys.Alloc4K() }

// Alloc2M takes one contiguous, aligned 2 MB block from the buddy
// allocator (functional only).
func (k Kernel) Alloc2M() (PAddr, bool) { return k.k.Phys.Alloc2M() }

// AllocBuddy4K is the instrumented buddy fast path: one 4 KB frame,
// with the allocation work (lock, freelist pop) recorded into tr the
// way the built-in policies charge it.
func (k Kernel) AllocBuddy4K(tr Tracer) (PAddr, bool) { return k.k.AllocBuddy4K(tr.t) }

// Free returns pages4K frames starting at pa to the buddy allocator.
func (k Kernel) Free(pa PAddr, pages4K uint64) { k.k.Phys.Free(pa, pages4K) }

// ZeroPoolPop returns a pre-zeroed 2 MB frame if the zero pool has one.
func (k Kernel) ZeroPoolPop() (PAddr, bool) { return k.k.ZeroPoolPop() }

// NoteTHPCandidate registers the 2 MB region containing va as a
// khugepaged collapse candidate for process p.
func (k Kernel) NoteTHPCandidate(p Process, v VMA, va VAddr) {
	k.k.NoteTHPCandidate(p.p.PID, v.v, va)
}

// FreeBytes returns the free physical memory in bytes.
func (k Kernel) FreeBytes() uint64 { return k.k.Phys.FreeBytes() }

// TotalBytes returns the physical memory size in bytes.
func (k Kernel) TotalBytes() uint64 { return k.k.Phys.TotalBytes() }

// Free2MBlocks returns the number of free, aligned 2 MB blocks — the
// fragmentation signal huge-page policies read.
func (k Kernel) Free2MBlocks() uint64 { return k.k.Phys.Free2MBlocks() }

// BuddyLock returns the kernel address of the buddy-allocator lock,
// for charging Atomic acquisitions.
func (k Kernel) BuddyLock() PAddr { return k.k.BuddyLockPA() }

// PTLock returns the kernel address of the page-table lock.
func (k Kernel) PTLock() PAddr { return k.k.PTLockPA() }

// Mmap creates a VMA of the given length in process pid's address
// space and returns its base — what a custom workload's Setup uses to
// lay out its address space.
func (k Kernel) Mmap(pid int, length uint64, flags MmapFlags) VAddr {
	return k.k.Mmap(pid, length, flags)
}

// MmapFlags selects the VMA type for Kernel.Mmap (anonymous,
// file-backed, hugetlbfs, ...).
type MmapFlags = mimicos.MmapFlags

// Process is the public handle over one simulated address space.
type Process struct{ p *mimicos.Process }

// PID returns the process identifier.
func (p Process) PID() int { return p.p.PID }

// ASID returns the address-space identifier TLB entries are tagged with.
func (p Process) ASID() uint16 { return p.p.ASID }

// RSS returns the resident set size in bytes.
func (p Process) RSS() uint64 { return p.p.RSS }

// VMA is the public handle over one virtual memory area.
type VMA struct{ v *mimicos.VMA }

// Start returns the VMA's first address.
func (v VMA) Start() VAddr { return v.v.Start }

// End returns the VMA's one-past-last address.
func (v VMA) End() VAddr { return v.v.End }

// Len returns the VMA length in bytes.
func (v VMA) Len() uint64 { return v.v.Len() }

// Contains reports whether va lies inside the VMA.
func (v VMA) Contains(va VAddr) bool { return v.v.Contains(va) }

// Anon reports whether the VMA is anonymous memory.
func (v VMA) Anon() bool { return v.v.Anon }

// CoversRegion reports whether the whole 2 MB region containing va fits
// inside the VMA — the THP eligibility check.
func (v VMA) CoversRegion(va VAddr) bool { return v.v.CoversRegion(va) }

// Mapped4KInRegion returns the number of resident 4 KB pages in the
// 2 MB region containing va (zero means the region is untouched — a
// huge mapping can go in without shattering anything).
func (v VMA) Mapped4KInRegion(va VAddr) int { return v.v.Mapped4KInRegion(va) }

// AllocDecision is a custom policy's answer to one anonymous fault.
// The zero value means allocation failure (the kernel then falls into
// reclaim, exactly as when the buddy allocator runs dry).
type AllocDecision struct {
	// Frame is the physical frame backing the page containing the
	// faulting address; Size is the granule chosen (the frame must be
	// Size-aligned and owned by the policy's allocation).
	Frame PAddr
	Size  PageSize
	// Prezeroed marks the frame as already zeroed, skipping the fault
	// path's zeroing work (e.g. frames from the zero pool).
	Prezeroed bool
	// RestSeg marks the frame as living in a Utopia RestSeg rather
	// than buddy-owned memory (release goes back to the segment).
	RestSeg bool
	// OK reports whether allocation succeeded.
	OK bool
}

// AllocPolicy is a custom physical-memory allocation policy — the
// public mirror of MimicOS's internal AllocPolicy interface (§7.5's
// policy axis). AllocAnon runs on every anonymous page fault; kernel
// work it records through tr is injected into the core model like any
// built-in policy's.
type AllocPolicy interface {
	// Name is the display name reported in Metrics.Policy (it need not
	// match the registered selection name).
	Name() string
	// AllocAnon picks the frame backing the page containing va.
	AllocAnon(k Kernel, p Process, vma VMA, va VAddr, tr Tracer, now uint64) AllocDecision
}

// policyAdapter lifts an ext.AllocPolicy into the internal interface.
type policyAdapter struct{ impl AllocPolicy }

func (a policyAdapter) Name() string { return a.impl.Name() }

func (a policyAdapter) AllocAnon(k *mimicos.Kernel, p *mimicos.Process, vma *mimicos.VMA, va mem.VAddr, tr *instrument.Tracer, now uint64) (mem.PAddr, mem.PageSize, bool, bool, bool) {
	d := a.impl.AllocAnon(Kernel{k}, Process{p}, VMA{vma}, va, Tracer{tr}, now)
	return d.Frame, d.Size, d.Prezeroed, d.RestSeg, d.OK
}

// RegisterPolicy registers a custom allocation policy under name. The
// constructor runs once per simulated system, so stateful policies
// never share state between concurrent sweep points. Registration
// fails on an empty, duplicate, or built-in-colliding name.
//
// After registration the policy is selectable by name everywhere a
// built-in policy is: WithPolicy, Sweep.Policies, ParsePolicy,
// KnownPolicies, and the -policy CLI flag.
func RegisterPolicy(name string, ctor func() AllocPolicy) error {
	if ctor == nil {
		return registry.RegisterPolicy(name, nil)
	}
	return registry.RegisterPolicy(name, func() mimicos.AllocPolicy {
		return policyAdapter{impl: ctor()}
	})
}

// MustRegisterPolicy is RegisterPolicy, panicking on error — for
// package init blocks.
func MustRegisterPolicy(name string, ctor func() AllocPolicy) {
	if err := RegisterPolicy(name, ctor); err != nil {
		panic(err)
	}
}

// TierPolicy is a custom page-migration policy for the tiered-memory
// subsystem — the public mirror of the internal tier.Policy interface.
// Methods are pure value transforms over a page's heat counter (the
// kernel's imitation of access-bit tracking): Touch runs on the faults
// that map or promote a page, Decay on the periodic access-bit sampling
// scans, Victim during tier eviction scans, and DemoteTo when a DRAM
// page is pushed down under memory pressure.
type TierPolicy interface {
	// Name is the display name reported in metrics.
	Name() string
	// Touch returns the new heat after a fault touched the page.
	Touch(heat uint32) uint32
	// Decay returns the new heat after a sampling scan found it idle.
	Decay(heat uint32) uint32
	// Victim reports whether a page of the given heat may be evicted on
	// this scan pass (pass 0 is selective; pass 1 is the desperate pass
	// and should almost always return true).
	Victim(heat uint32, pass int) bool
	// DemoteTo returns the slow-tier index (0 = fastest) a DRAM page of
	// the given heat demotes into, given slowTiers configured tiers.
	DemoteTo(slowTiers int, heat uint32) int
}

// tierPolicyAdapter lifts an ext.TierPolicy into the internal interface.
// The signatures match exactly, so it is a direct passthrough.
type tierPolicyAdapter struct{ impl TierPolicy }

func (a tierPolicyAdapter) Name() string                       { return a.impl.Name() }
func (a tierPolicyAdapter) Touch(heat uint32) uint32           { return a.impl.Touch(heat) }
func (a tierPolicyAdapter) Decay(heat uint32) uint32           { return a.impl.Decay(heat) }
func (a tierPolicyAdapter) Victim(heat uint32, pass int) bool  { return a.impl.Victim(heat, pass) }
func (a tierPolicyAdapter) DemoteTo(slow int, heat uint32) int { return a.impl.DemoteTo(slow, heat) }

// RegisterTierPolicy registers a custom tier migration policy under
// name. The constructor runs once per simulated system, so stateful
// policies never share state between concurrent sweep points.
// Registration fails on an empty, duplicate, or built-in-colliding
// name ("hotcold", "clock").
//
// After registration the policy is selectable by name everywhere a
// built-in tier policy is: WithTierPolicy, Sweep.TierPolicies,
// ParseTierPolicy, KnownTierPolicies, and the -tier-policy CLI flag.
func RegisterTierPolicy(name string, ctor func() TierPolicy) error {
	if ctor == nil {
		return registry.RegisterTierPolicy(name, nil)
	}
	return registry.RegisterTierPolicy(name, func() tier.Policy {
		return tierPolicyAdapter{impl: ctor()}
	})
}

// MustRegisterTierPolicy is RegisterTierPolicy, panicking on error —
// for package init blocks.
func MustRegisterTierPolicy(name string, ctor func() TierPolicy) {
	if err := RegisterTierPolicy(name, ctor); err != nil {
		panic(err)
	}
}

// TranslationResult is the outcome of one custom translation walk.
type TranslationResult struct {
	PA   PAddr
	Size PageSize
	// Lat is the walk latency in cycles — the design's latency model
	// (typically the sum of AccessPTE charges plus fixed lookup costs).
	Lat uint64
	// Fault reports that no valid mapping exists: the OS page-fault
	// path runs, then the access retries.
	Fault bool
}

// DesignEnv is what a custom translation design gets to work with. One
// instance is built per process (designs hold per-address-space state,
// switched like CR3 on context switches).
type DesignEnv struct{ env registry.DesignEnv }

// Lookup resolves va through the process's page table functionally —
// no memory traffic, no latency. Use it to find the mapping, then
// charge a latency model with AccessPTE.
func (e DesignEnv) Lookup(va VAddr) (pa PAddr, size PageSize, ok bool) {
	entry, ok := e.env.PT.Lookup(va)
	if !ok || !entry.Present {
		return 0, Page4K, false
	}
	return entry.Size.Translate(entry.Frame, va), entry.Size, true
}

// AccessPTE performs one page-table-entry access at physical address pa
// through the simulated cache hierarchy and DRAM, returning its latency
// in cycles — the building block of a walk-latency model. now is the
// current cycle (pass the walk's running timestamp so DRAM contention
// resolves realistically).
func (e DesignEnv) AccessPTE(pa PAddr, write bool, now uint64) uint64 {
	return e.env.Mem.AccessPTE(pa, write, now)
}

// AccessMeta performs one translation-metadata access (tag arrays,
// range tables, segment descriptors) at pa, returning its latency.
func (e DesignEnv) AccessMeta(pa PAddr, write bool, now uint64) uint64 {
	return e.env.Mem.AccessMeta(pa, write, now)
}

// WalkRadix delegates the access to the baseline four-level radix
// walker (with its page-walk caches) over the same page table — the
// fallback path hybrid designs use.
func (e DesignEnv) WalkRadix(va VAddr, now uint64) TranslationResult {
	r := e.env.Radix.TranslateMiss(va, now)
	return TranslationResult{PA: r.PA, Size: r.Size, Lat: r.Lat, Fault: r.Fault}
}

// ASID returns the address-space identifier of the process this design
// instance serves.
func (e DesignEnv) ASID() uint16 { return e.env.ASID }

// TranslationDesign is a custom address-translation scheme — the
// public mirror of the internal MMU design interface (§7.4's design
// axis). TranslateMiss is the per-access hook: it runs on every L2 STLB
// miss and returns where the page lives plus the cycles the hardware
// walk cost.
type TranslationDesign interface {
	// Name is the display name reported in Metrics.Design.
	Name() string
	// TranslateMiss resolves va after the TLB hierarchy missed.
	TranslateMiss(va VAddr, now uint64) TranslationResult
	// Invalidate drops design-internal cached state for a page when the
	// OS unmaps or remaps it (TLB shootdown). Stateless designs may
	// no-op.
	Invalidate(va VAddr, size PageSize)
}

// designAdapter lifts an ext.TranslationDesign into the internal MMU
// design interface.
type designAdapter struct{ impl TranslationDesign }

func (a designAdapter) Name() string { return a.impl.Name() }

func (a designAdapter) TranslateMiss(va mem.VAddr, now uint64) mmu.Result {
	r := a.impl.TranslateMiss(va, now)
	return mmu.Result{PA: r.PA, Size: r.Size, Lat: r.Lat, Fault: r.Fault}
}

func (a designAdapter) Invalidate(va mem.VAddr, size mem.PageSize) {
	a.impl.Invalidate(va, size)
}

// RegisterDesign registers a custom translation design under name. The
// constructor runs once per simulated process — every process owns its
// own design instance, switched on context switches like CR3 — and the
// kernel side keeps radix page tables, which the design reads through
// env.Lookup or delegates to with env.WalkRadix. Registration fails on
// an empty, duplicate, or built-in-colliding name.
//
// After registration the design is selectable by name everywhere a
// built-in design is: WithDesign, Sweep.Designs, ParseDesign,
// KnownDesigns, and the -design CLI flag.
func RegisterDesign(name string, ctor func(DesignEnv) TranslationDesign) error {
	if ctor == nil {
		return registry.RegisterDesign(name, nil)
	}
	return registry.RegisterDesign(name, func(env registry.DesignEnv) mmu.Design {
		return designAdapter{impl: ctor(DesignEnv{env})}
	})
}

// MustRegisterDesign is RegisterDesign, panicking on error.
func MustRegisterDesign(name string, ctor func(DesignEnv) TranslationDesign) {
	if err := RegisterDesign(name, ctor); err != nil {
		panic(err)
	}
}
