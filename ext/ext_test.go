package ext_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	virtuoso "repro"
	"repro/ext"
)

// testPolicy is a minimal custom allocation policy: buddy 4 KB frames
// with a custom instrumented routine, plus a call counter proving the
// policy actually ran.
type testPolicy struct {
	calls int
}

func (p *testPolicy) Name() string { return "EXT-TEST" }

func (p *testPolicy) AllocAnon(k ext.Kernel, proc ext.Process, vma ext.VMA, va ext.VAddr, tr ext.Tracer, now uint64) ext.AllocDecision {
	p.calls++
	exit := tr.Enter("ext_test_alloc")
	defer exit()
	tr.Atomic(k.BuddyLock())
	tr.ALU(50)
	frame, ok := k.AllocBuddy4K(tr)
	return ext.AllocDecision{Frame: frame, Size: ext.Page4K, OK: ok}
}

// testDesign is a minimal custom translation design: a fixed-overhead
// walk that resolves through the functional page table and charges one
// PTE access — the "few dozen lines" extension story for translation
// schemes.
type testDesign struct {
	env    ext.DesignEnv
	walks  uint64
	shoots uint64
}

func (d *testDesign) Name() string { return "ext-walker" }

func (d *testDesign) TranslateMiss(va ext.VAddr, now uint64) ext.TranslationResult {
	d.walks++
	pa, size, ok := d.env.Lookup(va)
	if !ok {
		return ext.TranslationResult{Lat: 10, Fault: true}
	}
	lat := 10 + d.env.AccessPTE(ext.Page4K.FrameBase(pa), false, now+10)
	return ext.TranslationResult{PA: pa, Size: size, Lat: lat}
}

func (d *testDesign) Invalidate(va ext.VAddr, size ext.PageSize) { d.shoots++ }

// testTierPolicy is a minimal custom migration policy: everything is a
// victim, and demotion always lands in the deepest slow tier.
type testTierPolicy struct{}

func (testTierPolicy) Name() string          { return "EXT-TIER" }
func (testTierPolicy) Touch(h uint32) uint32 { return h + 1 }
func (testTierPolicy) Decay(h uint32) uint32 {
	if h == 0 {
		return 0
	}
	return h - 1
}
func (testTierPolicy) Victim(h uint32, pass int) bool  { return true }
func (testTierPolicy) DemoteTo(slow int, h uint32) int { return slow - 1 }

func init() {
	ext.MustRegisterPolicy("ext-test-policy", func() ext.AllocPolicy { return &testPolicy{} })
	ext.MustRegisterTierPolicy("ext-test-tier", func() ext.TierPolicy { return testTierPolicy{} })
	ext.MustRegisterDesign("ext-test-design", func(env ext.DesignEnv) ext.TranslationDesign {
		return &testDesign{env: env}
	})
	ext.MustRegisterWorkload("ext-test-workload", func(p ext.WorkloadParams) (*ext.Workload, error) {
		foot := uint64(16 * ext.MB)
		return ext.NewWorkload("ext-test-workload", ext.ShortRunning, foot,
			func(w *ext.Workload, k ext.Kernel, pid int) {
				w.SetBase("data", k.Mmap(pid, foot, ext.MmapFlags{Anon: true}))
			},
			func(w *ext.Workload) []ext.Step {
				data := w.Base("data")
				return []ext.Step{
					{Kind: ext.StepTouch, Base: data, Size: foot, Stride: 64, ALUPer: 2, PC: 0xE00100},
					{Kind: ext.StepRand, Base: data, Size: foot, Count: foot / 512, ALUPer: 4, PC: 0xE00200},
				}
			}), nil
	})
}

func baseOpts() []virtuoso.Option {
	return []virtuoso.Option{
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithMaxInstructions(150_000),
	}
}

func TestRegisteredNamesAreKnown(t *testing.T) {
	foundP, foundD := false, false
	for _, p := range virtuoso.KnownPolicies() {
		if p == "ext-test-policy" {
			foundP = true
		}
	}
	for _, d := range virtuoso.KnownDesigns() {
		if d == "ext-test-design" {
			foundD = true
		}
	}
	if !foundP {
		t.Errorf("KnownPolicies() = %v, missing ext-test-policy", virtuoso.KnownPolicies())
	}
	if !foundD {
		t.Errorf("KnownDesigns() = %v, missing ext-test-design", virtuoso.KnownDesigns())
	}
	if _, err := virtuoso.ParsePolicy("ext-test-policy"); err != nil {
		t.Errorf("ParsePolicy rejected registered policy: %v", err)
	}
	if _, err := virtuoso.ParseDesign("ext-test-design"); err != nil {
		t.Errorf("ParseDesign rejected registered design: %v", err)
	}
	reg := virtuoso.RegisteredWorkloads()
	if len(reg) == 0 || !contains(reg, "ext-test-workload") {
		t.Errorf("RegisteredWorkloads() = %v, missing ext-test-workload", reg)
	}
	if !contains(virtuoso.KnownTierPolicies(), "ext-test-tier") {
		t.Errorf("KnownTierPolicies() = %v, missing ext-test-tier", virtuoso.KnownTierPolicies())
	}
	if _, err := virtuoso.ParseTierPolicy("ext-test-tier"); err != nil {
		t.Errorf("ParseTierPolicy rejected registered tier policy: %v", err)
	}
}

// TestRegisteredTierPolicy selects the custom migration policy by name
// through Open and a Sweep axis, under enough pressure that it actually
// steers demotions.
func TestRegisteredTierPolicy(t *testing.T) {
	tiers := []virtuoso.TierSpec{
		{Name: "cxl", Bytes: 64 << 20, ReadLat: 600, WriteLat: 900, BytesPerCycle: 8},
		{Name: "nvm", Bytes: 128 << 20, ReadLat: 2500, WriteLat: 8000, BytesPerCycle: 2},
	}
	cfg := virtuoso.ScaledConfig()
	cfg.MaxAppInsts = 400_000
	cfg.Policy = virtuoso.PolicyBuddy
	cfg.OSCfg.PhysBytes = 12 << 20
	cfg.OSCfg.SwapBytes = 512 << 20
	cfg.OSCfg.SwapThreshold = 0.5
	sess, err := virtuoso.Open(
		virtuoso.WithConfig(cfg),
		virtuoso.WithWorkload("RND"),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithTiers(tiers...),
		virtuoso.WithTierPolicy("ext-test-tier"),
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.OS.Demotions == 0 {
		t.Fatal("custom tier policy saw no demotions")
	}
	// DemoteTo always picks the deepest tier: all inbound traffic must
	// land in "nvm", none in "cxl".
	if len(m.Tiers) != 2 || m.Tiers[0].PagesIn != 0 || m.Tiers[1].PagesIn == 0 {
		t.Fatalf("deepest-tier policy not honoured: %+v", m.Tiers)
	}
	if res := sess.Result(m); res.TierPolicy != "ext-test-tier" {
		t.Errorf("Result.TierPolicy = %q, want ext-test-tier", res.TierPolicy)
	}

	// The same name sweeps as a TierPolicies axis value next to a
	// built-in.
	sweep := &virtuoso.Sweep{
		Base:         cfg,
		Workloads:    []string{"RND"},
		TierSpecs:    [][]virtuoso.TierSpec{tiers},
		TierPolicies: []string{"ext-test-tier", virtuoso.TierPolicyClock},
		Params:       virtuoso.WorkloadParams{Scale: 0.05},
		Parallel:     2,
	}
	rep, err := sweep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	if rep.Results[0].TierPolicy != "ext-test-tier" || rep.Results[1].TierPolicy != virtuoso.TierPolicyClock {
		t.Fatalf("swept tier policies echo %q/%q", rep.Results[0].TierPolicy, rep.Results[1].TierPolicy)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestOpenWithRegisteredComponents selects all three custom components
// purely by name through Open and verifies they actually ran.
func TestOpenWithRegisteredComponents(t *testing.T) {
	sess, err := virtuoso.Open(append(baseOpts(),
		virtuoso.WithWorkload("ext-test-workload"),
		virtuoso.WithPolicy("ext-test-policy"),
		virtuoso.WithDesign("ext-test-design"),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if m.Policy != "EXT-TEST" {
		t.Errorf("Metrics.Policy = %q, want the custom policy's display name EXT-TEST", m.Policy)
	}
	if m.Design != "ext-test-design" {
		t.Errorf("Metrics.Design = %q, want ext-test-design", m.Design)
	}
	if m.Workload != "ext-test-workload" {
		t.Errorf("Metrics.Workload = %q, want ext-test-workload", m.Workload)
	}
	if m.MinorFaults == 0 {
		t.Error("custom policy served no faults")
	}
	if m.Walks == 0 {
		t.Error("custom design performed no walks")
	}
}

// TestSweepWithRegisteredComponents runs custom components as sweep grid
// axis values alongside built-ins, in parallel — the registry must be
// safe for concurrent reads (this test is part of the -race suite).
func TestSweepWithRegisteredComponents(t *testing.T) {
	base := virtuoso.ScaledConfig()
	base.MaxAppInsts = 100_000
	sweep := &virtuoso.Sweep{
		Base:      base,
		Workloads: []string{"ext-test-workload", "XS"},
		Designs:   []virtuoso.DesignName{"ext-test-design", virtuoso.DesignRadix},
		Policies:  []virtuoso.PolicyName{"ext-test-policy", virtuoso.PolicyBuddy},
		Params:    virtuoso.WorkloadParams{Scale: 0.05},
		Parallel:  4,
	}
	rep, err := sweep.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 8 {
		t.Fatalf("got %d results, want 8", len(rep.Results))
	}
	seen := map[string]bool{}
	for _, r := range rep.Results {
		seen[string(r.Design)+"/"+string(r.Policy)] = true
	}
	if !seen["ext-test-design/ext-test-policy"] {
		t.Errorf("custom design × custom policy point missing: %v", seen)
	}
}

// TestRegisteredWorkloadInMix puts a registered workload into a
// multiprogrammed process mix next to a catalog one.
func TestRegisteredWorkloadInMix(t *testing.T) {
	sess, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithMaxInstructions(60_000),
		virtuoso.WithProcesses("ext-test-workload", "SEQ"),
	)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := sess.RunMulti()
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.Procs) != 2 || mm.Procs[0].Workload != "ext-test-workload" {
		t.Fatalf("mix procs = %+v, want ext-test-workload first", mm.Procs)
	}
}

func TestRegistrationHygiene(t *testing.T) {
	if err := ext.RegisterPolicy("ext-test-policy", func() ext.AllocPolicy { return &testPolicy{} }); err == nil {
		t.Error("duplicate policy registration accepted")
	}
	if err := ext.RegisterPolicy("thp", func() ext.AllocPolicy { return &testPolicy{} }); err == nil || !strings.Contains(err.Error(), "built-in") {
		t.Errorf("built-in policy collision: err = %v", err)
	}
	if err := ext.RegisterDesign("ech", func(ext.DesignEnv) ext.TranslationDesign { return nil }); err == nil {
		t.Error("built-in design collision accepted")
	}
	if err := ext.RegisterWorkload("graphbig-bfs", func(ext.WorkloadParams) (*ext.Workload, error) { return nil, nil }); err == nil {
		t.Error("catalog workload collision accepted")
	}
	if err := ext.RegisterPolicy("", func() ext.AllocPolicy { return &testPolicy{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := ext.RegisterPolicy("nil-ctor", nil); err == nil {
		t.Error("nil constructor accepted")
	}
	if err := ext.RegisterTierPolicy("ext-test-tier", func() ext.TierPolicy { return testTierPolicy{} }); err == nil {
		t.Error("duplicate tier policy registration accepted")
	}
	if err := ext.RegisterTierPolicy("hotcold", func() ext.TierPolicy { return testTierPolicy{} }); err == nil || !strings.Contains(err.Error(), "built-in") {
		t.Errorf("built-in tier policy collision: err = %v", err)
	}
	if err := ext.RegisterTierPolicy("nil-tier-ctor", nil); err == nil {
		t.Error("nil tier policy constructor accepted")
	}
}

// normalise zeroes the host-side fields (wall time, heap) that
// legitimately differ between two otherwise identical runs.
func normalise(r virtuoso.Result) virtuoso.Result {
	r.Metrics.WallTime = 0
	r.Metrics.SimHeapBytes = 0
	if r.Multi != nil {
		mm := *r.Multi
		mm.Aggregate.WallTime = 0
		mm.Aggregate.SimHeapBytes = 0
		r.Multi = &mm
	}
	return r
}

func resultJSON(t *testing.T, r virtuoso.Result) string {
	t.Helper()
	data, err := json.Marshal(normalise(r))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestObserverCountersMatchMetrics checks the Observer contract: the
// interval deltas sum to the final snapshot, and the final snapshot's
// counters equal the run's Metrics exactly.
func TestObserverCountersMatchMetrics(t *testing.T) {
	var snaps []virtuoso.Snapshot
	sess, err := virtuoso.Open(append(baseOpts(),
		virtuoso.WithWorkload("XS"),
		virtuoso.WithObserver(virtuoso.ObserverFunc(func(s virtuoso.Snapshot) {
			snaps = append(snaps, s)
		})),
		virtuoso.WithObserveInterval(20_000),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 {
		t.Fatalf("got %d snapshots, want several (interval 20k over 150k insts)", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Error("last snapshot not marked Final")
	}
	for i, s := range snaps {
		if s.Seq != i {
			t.Errorf("snapshot %d has Seq %d", i, s.Seq)
		}
	}
	// Sum the per-interval deltas; they must reconstruct the final
	// cumulative counters, which must equal the Metrics.
	var sumInsts, sumCycles, sumMisses, sumFaults uint64
	prev := virtuoso.Snapshot{}
	for _, s := range snaps {
		sumInsts += s.AppInsts - prev.AppInsts
		sumCycles += s.Cycles - prev.Cycles
		sumMisses += s.L2TLBMisses - prev.L2TLBMisses
		sumFaults += s.MinorFaults - prev.MinorFaults
		prev = s
	}
	if sumInsts != m.AppInsts || sumCycles != m.Cycles || sumMisses != m.L2TLBMisses || sumFaults != m.OS.MinorFaults {
		t.Errorf("interval sums (insts=%d cycles=%d misses=%d faults=%d) != metrics (insts=%d cycles=%d misses=%d faults=%d)",
			sumInsts, sumCycles, sumMisses, sumFaults,
			m.AppInsts, m.Cycles, m.L2TLBMisses, m.OS.MinorFaults)
	}
	if last.KernelInsts != m.KernelInsts || last.Walks != m.Walks || last.MajorFaults != m.OS.MajorFaults {
		t.Errorf("final snapshot %+v does not match metrics", last)
	}
}

// TestObserverDeterminism is the determinism guard: a run with an
// Observer attached must produce a byte-identical Result to the same
// run without one.
func TestObserverDeterminism(t *testing.T) {
	run := func(opts ...virtuoso.Option) string {
		sess, err := virtuoso.Open(append(baseOpts(), opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		return resultJSON(t, sess.Result(m))
	}
	plain := run(virtuoso.WithWorkload("XS"))
	var n int
	observed := run(virtuoso.WithWorkload("XS"),
		virtuoso.WithObserver(virtuoso.ObserverFunc(func(virtuoso.Snapshot) { n++ })),
		virtuoso.WithObserveInterval(10_000))
	if n == 0 {
		t.Fatal("observer never fired")
	}
	if plain != observed {
		t.Errorf("observed run differs from unobserved run:\nplain:    %s\nobserved: %s", plain, observed)
	}

	// Same guard for a custom design + policy and a multiprogrammed run.
	plainM := func(opts ...virtuoso.Option) string {
		sess, err := virtuoso.Open(append([]virtuoso.Option{
			virtuoso.WithScaledConfig(),
			virtuoso.WithWorkloadScale(0.05),
			virtuoso.WithMaxInstructions(50_000),
			virtuoso.WithProcesses("ext-test-workload", "SEQ"),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		mm, err := sess.RunMulti()
		if err != nil {
			t.Fatal(err)
		}
		return resultJSON(t, sess.MultiResult(mm))
	}
	a := plainM()
	b := plainM(virtuoso.WithObserver(virtuoso.ObserverFunc(func(virtuoso.Snapshot) {})),
		virtuoso.WithObserveInterval(10_000))
	if a != b {
		t.Error("observed multiprogrammed run differs from unobserved run")
	}
}

// TestCustomDesignPerProcess checks that each process of a
// multiprogrammed run gets its own design instance (the CR3-switch
// contract) — two processes under the custom design must not share
// walk state.
func TestCustomDesignPerProcess(t *testing.T) {
	sess, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithMaxInstructions(40_000),
		virtuoso.WithDesign("ext-test-design"),
		virtuoso.WithProcesses("SEQ", "SEQ"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunMulti(); err != nil {
		t.Fatal(err)
	}
}
