package ext_test

import (
	"fmt"
	"log"

	virtuoso "repro"
	"repro/ext"
)

// zeroFirstPolicy is a complete custom allocation policy: plain buddy
// 4 KB frames, but served from the pre-zeroed pool when possible.
type zeroFirstPolicy struct{}

func (zeroFirstPolicy) Name() string { return "zero-first" }

func (zeroFirstPolicy) AllocAnon(k ext.Kernel, p ext.Process, vma ext.VMA, va ext.VAddr, tr ext.Tracer, now uint64) ext.AllocDecision {
	exit := tr.Enter("zero_first_alloc")
	defer exit()
	if vma.CoversRegion(va) && vma.Mapped4KInRegion(va) == 0 {
		if frame, ok := k.ZeroPoolPop(); ok {
			tr.ALU(40)
			return ext.AllocDecision{Frame: frame, Size: ext.Page2M, Prezeroed: true, OK: true}
		}
	}
	frame, ok := k.AllocBuddy4K(tr)
	return ext.AllocDecision{Frame: frame, Size: ext.Page4K, OK: ok}
}

// ExampleRegisterPolicy registers a custom allocation policy and
// selects it by name, like a built-in.
func ExampleRegisterPolicy() {
	if err := ext.RegisterPolicy("zero-first", func() ext.AllocPolicy {
		return zeroFirstPolicy{}
	}); err != nil {
		log.Fatal(err)
	}
	sess, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("BFS"),
		virtuoso.WithPolicy("zero-first"),
		virtuoso.WithMaxInstructions(50_000),
	)
	if err != nil {
		log.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Policy, m.MinorFaults > 0)
	// Output: zero-first true
}

// ExampleRegisterDesign registers a custom translation design — a
// single-access hashed walk with a fixed tag-check cost — and sweeps it
// against the baseline.
func ExampleRegisterDesign() {
	err := ext.RegisterDesign("flat-hash", func(env ext.DesignEnv) ext.TranslationDesign {
		return flatHash{env: env}
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := virtuoso.Open(
		virtuoso.WithScaledConfig(),
		virtuoso.WithWorkloadScale(0.05),
		virtuoso.WithWorkload("BFS"),
		virtuoso.WithDesign("flat-hash"),
		virtuoso.WithMaxInstructions(50_000),
	)
	if err != nil {
		log.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Design, m.Walks > 0)
	// Output: flat-hash true
}

// flatHash resolves misses with one functional lookup plus one charged
// PTE access — an idealised single-step hashed page table.
type flatHash struct{ env ext.DesignEnv }

func (f flatHash) Name() string { return "flat-hash" }

func (f flatHash) TranslateMiss(va ext.VAddr, now uint64) ext.TranslationResult {
	const tagCheck = 4 // cycles: hash + tag compare
	pa, size, ok := f.env.Lookup(va)
	if !ok {
		return ext.TranslationResult{Lat: tagCheck, Fault: true}
	}
	lat := tagCheck + f.env.AccessPTE(ext.Page4K.FrameBase(pa), false, now+tagCheck)
	return ext.TranslationResult{PA: pa, Size: size, Lat: lat}
}

func (flatHash) Invalidate(va ext.VAddr, size ext.PageSize) {}
