package virtuoso_test

// Differential determinism harness for the engine's fast lane: every
// batched/devirtualized/pooled hot-path optimization must produce
// byte-identical Results to the unbatched per-instruction reference
// loop (WithReferencePath). The matrix spans translation designs,
// allocation policies, workloads, simulation modes, and all four run
// shapes — single-process, multiprogrammed, virtualized, and trace
// replay — comparing Report.CanonicalJSON of both paths.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	virtuoso "repro"
)

// fastpathInsts bounds each matrix point. Long enough to exercise
// faults, TLB fills, page-walks, prefetchers, and (multiprogrammed)
// several scheduling quanta; short enough that the whole matrix stays
// in unit-test time.
const fastpathInsts = 120_000

// canonicalSingle runs one single-process configuration on the chosen
// loop and returns the canonical report bytes.
func canonicalSingle(t *testing.T, ref bool, opts ...virtuoso.Option) []byte {
	t.Helper()
	all := append([]virtuoso.Option{
		virtuoso.WithScaledConfig(),
		tinyScale(),
		virtuoso.WithMaxInstructions(fastpathInsts),
		virtuoso.WithReferencePath(ref),
	}, opts...)
	sess, err := virtuoso.Open(all...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.Run()
	if err != nil {
		t.Fatal(err)
	}
	rep := &virtuoso.Report{Results: []virtuoso.Result{sess.Result(m)}, Points: 1}
	data, err := rep.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func diffReports(t *testing.T, fast, reference []byte) {
	t.Helper()
	if bytes.Equal(fast, reference) {
		return
	}
	// Locate the first divergent line so a failure names the metric.
	fl := bytes.Split(fast, []byte("\n"))
	rl := bytes.Split(reference, []byte("\n"))
	for i := 0; i < len(fl) && i < len(rl); i++ {
		if !bytes.Equal(fl[i], rl[i]) {
			t.Fatalf("fast path diverges from reference at line %d:\n  fast: %s\n  ref:  %s", i+1, fl[i], rl[i])
		}
	}
	t.Fatalf("fast path report length %d != reference %d", len(fast), len(reference))
}

func TestFastPathEquivalence(t *testing.T) {
	cases := []struct {
		name     string
		design   virtuoso.DesignName
		policy   virtuoso.PolicyName
		workload string
		extra    []virtuoso.Option
	}{
		{"radix/thp/BFS", virtuoso.DesignRadix, virtuoso.PolicyTHP, "BFS", nil},
		{"radix/bd/RND", virtuoso.DesignRadix, virtuoso.PolicyBuddy, "RND", nil},
		{"radix/eager/SEQ", virtuoso.DesignRadix, virtuoso.PolicyEager, "SEQ", nil},
		{"ech/thp/BFS", virtuoso.DesignECH, virtuoso.PolicyTHP, "BFS", nil},
		{"ht/bd/RND", virtuoso.DesignHT, virtuoso.PolicyBuddy, "RND", nil},
		{"hdc/cr-thp/RND", virtuoso.DesignHDC, virtuoso.PolicyCRTHP, "RND", nil},
		{"utopia/utopia/BFS", virtuoso.DesignUtopia, virtuoso.PolicyUtopia, "BFS", nil},
		{"rmm/eager/RND", virtuoso.DesignRMM, virtuoso.PolicyEager, "RND", nil},
		{"midgard/thp/BFS", virtuoso.DesignMidgard, virtuoso.PolicyTHP, "BFS", nil},
		{"directseg/ar-thp/BFS", virtuoso.DesignDirectSeg, virtuoso.PolicyARTHP, "BFS", nil},
		{"emulation/radix/bd/SEQ", virtuoso.DesignRadix, virtuoso.PolicyBuddy, "SEQ",
			[]virtuoso.Option{virtuoso.WithMode(virtuoso.Emulation)}},
		{"tiered/radix/bd/RND", virtuoso.DesignRadix, virtuoso.PolicyBuddy, "RND",
			[]virtuoso.Option{
				virtuoso.WithTiers(
					virtuoso.TierSpec{Name: "cxl", Bytes: 64 << 20, ReadLat: 600, WriteLat: 900, BytesPerCycle: 8},
					virtuoso.TierSpec{Name: "nvm", Bytes: 128 << 20, ReadLat: 2500, WriteLat: 8000, BytesPerCycle: 2},
				),
				virtuoso.WithTierPolicy(virtuoso.TierPolicyClock),
			}},
		{"memtrace/radix/thp/RND", virtuoso.DesignRadix, virtuoso.PolicyTHP, "RND",
			[]virtuoso.Option{virtuoso.WithFrontend(virtuoso.FrontendMemTrace)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]virtuoso.Option{
				virtuoso.WithWorkload(tc.workload),
				virtuoso.WithDesign(tc.design),
				virtuoso.WithPolicy(tc.policy),
			}, tc.extra...)
			fast := canonicalSingle(t, false, opts...)
			ref := canonicalSingle(t, true, opts...)
			diffReports(t, fast, ref)
		})
	}
}

func TestFastPathEquivalenceMulti(t *testing.T) {
	for _, retention := range []bool{false, true} {
		name := "flush"
		if retention {
			name = "asid-retention"
		}
		t.Run(name, func(t *testing.T) {
			run := func(ref bool) []byte {
				sess, err := virtuoso.Open(
					virtuoso.WithScaledConfig(),
					tinyScale(),
					virtuoso.WithProcesses("BFS", "RND"),
					virtuoso.WithMaxInstructions(150_000),
					virtuoso.WithASIDRetention(retention),
					virtuoso.WithReferencePath(ref),
				)
				if err != nil {
					t.Fatal(err)
				}
				mm, err := sess.RunMulti()
				if err != nil {
					t.Fatal(err)
				}
				rep := &virtuoso.Report{Results: []virtuoso.Result{sess.MultiResult(mm)}, Points: 1}
				data, err := rep.CanonicalJSON()
				if err != nil {
					t.Fatal(err)
				}
				return data
			}
			diffReports(t, run(false), run(true))
		})
	}
}

func TestFastPathEquivalenceReplay(t *testing.T) {
	dir := t.TempDir()

	// Record the same workload under both loops: the trace files must be
	// byte-identical (the frontend tap sees the same stream in the same
	// order), and so must the recording runs' metrics.
	record := func(ref bool, name string, ropts ...virtuoso.RecordOption) ([]byte, []byte) {
		path := filepath.Join(dir, name)
		sess, err := virtuoso.Open(
			virtuoso.WithScaledConfig(),
			tinyScale(),
			virtuoso.WithWorkload("BFS"),
			virtuoso.WithMaxInstructions(fastpathInsts),
			virtuoso.WithReferencePath(ref),
		)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := sess.Record(path, ropts...)
		if err != nil {
			t.Fatal(err)
		}
		rep := &virtuoso.Report{Results: []virtuoso.Result{sess.Result(m)}, Points: 1}
		data, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data, raw
	}
	fastRep, fastRaw := record(false, "fast.trc")
	refRep, refRaw := record(true, "ref.trc")
	diffReports(t, fastRep, refRep)
	if !bytes.Equal(fastRaw, refRaw) {
		t.Fatal("trace recorded through the fast lane differs from the reference recording")
	}

	// The same recording equivalence holds for the legacy v1 format —
	// and the run's metrics are format-independent.
	fastRep1, fastRaw1 := record(false, "fast1.trc", virtuoso.RecordFormatV1())
	refRep1, refRaw1 := record(true, "ref1.trc", virtuoso.RecordFormatV1())
	diffReports(t, fastRep1, refRep1)
	if !bytes.Equal(fastRaw1, refRaw1) {
		t.Fatal("v1 trace recorded through the fast lane differs from the reference recording")
	}
	diffReports(t, fastRep, fastRep1)

	// Replay the recorded traces under both loops and through every
	// decode strategy — v2 (block decoder), v1 (streaming), a v1→v2
	// conversion, and the shared decoded-trace store (cold, then from
	// memory). Each must reproduce the reference replay byte for byte.
	replay := func(name string, ref bool, extra ...virtuoso.Option) []byte {
		opts := []virtuoso.Option{
			virtuoso.WithScaledConfig(),
			tinyScale(),
			virtuoso.WithTrace(filepath.Join(dir, name)),
			virtuoso.WithMaxInstructions(fastpathInsts),
			virtuoso.WithReferencePath(ref),
		}
		sess, err := virtuoso.Open(append(opts, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sess.Run()
		if err != nil {
			t.Fatal(err)
		}
		rep := &virtuoso.Report{Results: []virtuoso.Result{sess.Result(m)}, Points: 1}
		data, err := rep.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ref := replay("fast.trc", true)
	diffReports(t, replay("fast.trc", false), ref)
	diffReports(t, replay("fast1.trc", false), ref)
	if _, err := virtuoso.ConvertTrace(filepath.Join(dir, "fast1.trc"), filepath.Join(dir, "conv.trc")); err != nil {
		t.Fatal(err)
	}
	diffReports(t, replay("conv.trc", false), ref)
	store := virtuoso.NewTraceStore(0)
	diffReports(t, replay("fast.trc", false, virtuoso.WithTraceStore(store)), ref)
	diffReports(t, replay("fast.trc", false, virtuoso.WithTraceStore(store)), ref)
	st := store.Stats()
	if st.Decodes != 1 || st.Hits != 1 {
		t.Errorf("store replays: decodes=%d hits=%d, want 1/1", st.Decodes, st.Hits)
	}
}

func TestFastPathEquivalenceVirtualized(t *testing.T) {
	run := func(ref bool) (uint64, uint64, uint64, float64) {
		cfg := virtuoso.DefaultVirtualizedConfig()
		cfg.GuestPhysBytes = 256 << 20
		cfg.HostPhysBytes = 512 << 20
		cfg.ReferencePath = ref
		v := virtuoso.NewVirtualizedSystem(cfg)
		w, err := virtuoso.NamedWorkloadWith("2D-Sum", virtuoso.WorkloadParams{Scale: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		return v.Run(w, 150_000)
	}
	fg, fh, fk, fipc := run(false)
	rg, rh, rk, ripc := run(true)
	if fg != rg || fh != rh || fk != rk || fipc != ripc {
		t.Fatalf("virtualized fast path diverges: fast=(%d,%d,%d,%v) ref=(%d,%d,%d,%v)",
			fg, fh, fk, fipc, rg, rh, rk, ripc)
	}
	if fg == 0 || fh == 0 {
		t.Fatal("virtualized run exercised no nested faults; matrix point is vacuous")
	}
}
