// Package virtuoso is the public API of this reproduction of "Virtuoso:
// Enabling Fast and Accurate Virtual Memory Research via an
// Imitation-based Operating System Simulation Methodology" (ASPLOS'25).
//
// A Virtuoso system couples an architectural simulator (core model, cache
// hierarchy, DRAM, optional SSD) with MimicOS, a lightweight userspace
// kernel imitating Linux memory management. OS events raised by the
// simulated workload (page faults, mmap) cross a functional channel to
// MimicOS; the instruction stream of the kernel routine that served each
// event is injected back into the core model, so OS work is charged its
// real latency and memory interference.
//
// Quick start:
//
//	sys := virtuoso.New(virtuoso.DefaultConfig())
//	metrics := sys.Run(virtuoso.WorkloadByName("BFS"))
//	fmt.Println(metrics.IPC, metrics.AvgPTWLat)
//
// Use Config.Design to study translation schemes (radix, ech, hdc, ht,
// utopia, rmm, midgard, directseg), Config.Policy for allocation policies
// (bd, thp, cr-thp, ar-thp, utopia, eager), and Config.Mode to compare
// the imitation methodology against fixed-latency emulation.
package virtuoso

import (
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mimicos"
	"repro/internal/workloads"
)

// Re-exported configuration types.
type (
	// Config assembles a simulated system (see internal/core).
	Config = core.Config
	// Metrics is the result of one simulation run.
	Metrics = core.Metrics
	// System is an assembled simulator + MimicOS pair.
	System = core.System
	// Workload is a benchmark from the Table 5 suites or a custom one.
	Workload = workloads.Workload
	// DesignName selects a translation design.
	DesignName = core.DesignName
	// PolicyName selects an allocation policy.
	PolicyName = core.PolicyName
	// MmapFlags selects the VMA type for custom workloads.
	MmapFlags = mimicos.MmapFlags
)

// Simulation modes (Table 1's methodology axis).
const (
	// Imitation is Virtuoso's methodology.
	Imitation = core.Imitation
	// Emulation is the fixed-latency baseline methodology.
	Emulation = core.Emulation
)

// Translation designs.
const (
	DesignRadix   = core.DesignRadix
	DesignECH     = core.DesignECH
	DesignHDC     = core.DesignHDC
	DesignHT      = core.DesignHT
	DesignUtopia  = core.DesignUtopia
	DesignRMM     = core.DesignRMM
	DesignMidgard = core.DesignMidgard
)

// Allocation policies.
const (
	PolicyBuddy  = core.PolicyBuddy
	PolicyTHP    = core.PolicyTHP
	PolicyCRTHP  = core.PolicyCRTHP
	PolicyARTHP  = core.PolicyARTHP
	PolicyUtopia = core.PolicyUtopia
	PolicyEager  = core.PolicyEager
)

// DefaultConfig returns the paper's Table 4 Virtuoso+Sniper system.
func DefaultConfig() Config { return core.DefaultConfig() }

// ScaledConfig returns the proportionally scaled system the experiments
// use (see internal/experiments for the scaling methodology).
func ScaledConfig() Config {
	return experiments.BaseConfig(experiments.Opts{})
}

// New builds a system, panicking on configuration errors (use
// core.NewSystem directly for error returns).
func New(cfg Config) *System { return core.MustNewSystem(cfg) }

// WorkloadByName returns a Table 5 workload ("BC", "BFS", ..., "JSON",
// "Llama-2-7B", ...); it panics on unknown names.
func WorkloadByName(name string) *Workload {
	w, ok := workloads.ByName(name)
	if !ok {
		panic("virtuoso: unknown workload " + name)
	}
	return w
}

// LongRunningSuite returns the Table 5 long-running workloads.
func LongRunningSuite() []*Workload { return workloads.LongSuite() }

// ShortRunningSuite returns the Table 5 short-running workloads.
func ShortRunningSuite() []*Workload { return workloads.ShortSuite() }

// SetWorkloadScale rescales all workload footprints (1.0 = the library's
// reference sizes; experiments use smaller values).
func SetWorkloadScale(s float64) { workloads.Scale = s }
