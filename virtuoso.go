// Package virtuoso is the public API of this reproduction of "Virtuoso:
// Enabling Fast and Accurate Virtual Memory Research via an
// Imitation-based Operating System Simulation Methodology" (ASPLOS'25).
//
// A Virtuoso system couples an architectural simulator (core model, cache
// hierarchy, DRAM, optional SSD) with MimicOS, a lightweight userspace
// kernel imitating Linux memory management. OS events raised by the
// simulated workload (page faults, mmap) cross a functional channel to
// MimicOS; the instruction stream of the kernel routine that served each
// event is injected back into the core model, so OS work is charged its
// real latency and memory interference.
//
// Quick start — one configuration, error-returning:
//
//	sess, err := virtuoso.Open(
//		virtuoso.WithScaledConfig(),
//		virtuoso.WithWorkload("BFS"),
//		virtuoso.WithDesign(virtuoso.DesignRadix),
//	)
//	if err != nil {
//		log.Fatal(err)
//	}
//	m, err := sess.Run()
//	fmt.Println(m.IPC, m.AvgPTWLat)
//
// Design-space exploration — a (designs × policies × workloads × seeds)
// grid executed on a bounded worker pool with context cancellation:
//
//	sweep := &virtuoso.Sweep{
//		Base:      virtuoso.ScaledConfig(),
//		Designs:   []virtuoso.DesignName{virtuoso.DesignRadix, virtuoso.DesignECH},
//		Workloads: []string{"BFS", "XS"},
//		Seeds:     []uint64{1, 2},
//		Parallel:  8,
//	}
//	report, err := sweep.Run(context.Background())
//	fmt.Println(report.GeomeanBy(virtuoso.ByDesign, func(r virtuoso.Result) float64 { return r.Metrics.IPC }))
//
// Use WithDesign / Sweep.Designs to study translation schemes (radix,
// ech, hdc, ht, utopia, rmm, midgard, directseg), WithPolicy /
// Sweep.Policies for allocation policies (bd, thp, cr-thp, ar-thp,
// utopia, eager), and WithMode to compare the imitation methodology
// against fixed-latency emulation. Results marshal to JSON (see Result
// and Report) for downstream analysis.
//
// Trace record/replay — any workload can be captured to a compact
// binary trace file and replayed later through the trace-driven
// frontends (§6.2's ChampSim/Ramulator integration styles; byte-level
// format in docs/trace-format.md). Replaying a trace under the
// configuration that recorded it reproduces the recording run's Result
// exactly:
//
//	m, info, err := sess.Record("bfs.trc.gz") // live run, stream teed to disk
//	rep, err := virtuoso.Open(virtuoso.WithTrace("bfs.trc.gz"))
//	m2, err := rep.Run()                      // identical metrics, no workload needed
//
// Multiprogrammed runs — several workloads share one machine as
// concurrent processes, each in its own address space, interleaved by
// the MimicOS round-robin scheduler. The aggregate footprint drives
// real memory pressure into the swap and khugepaged paths, and the TLB
// either flushes on every context switch or retains entries by ASID:
//
//	sess, err := virtuoso.Open(
//		virtuoso.WithScaledConfig(),
//		virtuoso.WithProcesses("RND", "SEQ"),
//		virtuoso.WithQuantum(100_000),
//		virtuoso.WithASIDRetention(true),
//	)
//	mm, err := sess.RunMulti()
//	fmt.Println(mm.Aggregate.IPC, mm.ContextSwitches, mm.Procs[0].OS.SwapOuts)
//
// Sweeps take mixes as a grid axis (Sweep.Mixes), so design × mix ×
// seed grids of multiprogrammed points run on the same worker pool.
//
// Extension — custom allocation policies, translation designs, and
// workloads register by name through the repro/ext package and are then
// selectable everywhere a built-in is (Open options, sweep axes, the
// CLI, trace recording):
//
//	ext.MustRegisterPolicy("bank-color", func() ext.AllocPolicy { ... })
//	sess, err := virtuoso.Open(virtuoso.WithPolicy("bank-color"), ...)
//
// Observation — WithObserver streams interval Snapshots (instructions,
// cycles, TLB/PTW/OS-event counters) during a run without perturbing
// it, for progress reporting and live dashboards:
//
//	virtuoso.WithObserver(virtuoso.ObserverFunc(func(s virtuoso.Snapshot) {
//		fmt.Printf("%.0f%% ipc=%.2f\n", 100*float64(s.AppInsts)/float64(total), s.IPC())
//	}))
//
// See docs/extending.md for worked examples of all four extension
// points.
package virtuoso

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mimicos"
	"repro/internal/registry"
	"repro/internal/tier"
	"repro/internal/workloads"
)

// Re-exported configuration types.
type (
	// Config assembles a simulated system (see internal/core).
	Config = core.Config
	// Metrics is the result of one simulation run.
	Metrics = core.Metrics
	// System is an assembled simulator + MimicOS pair.
	System = core.System
	// Workload is a benchmark from the Table 5 suites or a custom one.
	Workload = workloads.Workload
	// DesignName selects a translation design.
	DesignName = core.DesignName
	// PolicyName selects an allocation policy.
	PolicyName = core.PolicyName
	// Mode selects the OS-simulation methodology.
	Mode = core.Mode
	// MmapFlags selects the VMA type for custom workloads.
	MmapFlags = mimicos.MmapFlags
	// Frontend selects how application instructions reach the core
	// model (§6.2's integration styles).
	Frontend = core.Frontend
	// WorkloadParams configures catalog workload construction (footprint
	// scale, long-running iteration count). The zero value means the
	// library defaults; passing explicit params is the race-free way to
	// build differently scaled workloads concurrently.
	WorkloadParams = workloads.Params
	// MultiMetrics is the result of one multiprogrammed run: aggregate
	// metrics plus the per-process breakdown and scheduler accounting.
	MultiMetrics = core.MultiMetrics
	// ProcessMetrics is one process's share of a multiprogrammed run.
	ProcessMetrics = core.ProcessMetrics
	// Snapshot is one interval observation of a running simulation (see
	// WithObserver). Counters are cumulative; the Final snapshot of a
	// completed run equals the corresponding fields of its Metrics.
	Snapshot = core.Snapshot
	// UtopiaSegSpec configures one Utopia RestSeg (Config.UtopiaSegs).
	UtopiaSegSpec = core.UtopiaSegSpec
	// TierSpec describes one slow memory tier (capacity, latencies,
	// bandwidth) of a tiered-memory hierarchy (see WithTiers).
	TierSpec = tier.Spec
	// TierStats is one tier's migration and occupancy counters
	// (Metrics.Tiers).
	TierStats = tier.Stats
)

// Observer receives streaming interval snapshots during a run (see
// WithObserver). Implementations must not retain or mutate simulator
// state; Observe runs on the simulation goroutine.
type Observer interface {
	Observe(Snapshot)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(Snapshot)

// Observe implements Observer.
func (f ObserverFunc) Observe(s Snapshot) { f(s) }

// Frontend integration styles (§6.2).
const (
	// FrontendExec is execution-driven (Sniper-style): instructions are
	// generated and simulated on the fly.
	FrontendExec = core.FrontendExec
	// FrontendTrace is trace-driven (ChampSim-style): the instruction
	// stream comes from a recorded trace file (see WithTrace) or, with
	// no trace attached, is materialised in memory before the run.
	FrontendTrace = core.FrontendTrace
	// FrontendMemTrace is memory-trace-driven (Ramulator-style): only
	// memory operations are simulated; other work collapses to bubbles.
	FrontendMemTrace = core.FrontendMemTrace
	// FrontendEmu is emulation-driven (gem5-SE-style): a functional
	// emulation step precedes timing for each instruction.
	FrontendEmu = core.FrontendEmu
)

// Simulation modes (Table 1's methodology axis).
const (
	// Imitation is Virtuoso's methodology.
	Imitation = core.Imitation
	// Emulation is the fixed-latency baseline methodology.
	Emulation = core.Emulation
)

// Translation designs (§7.4's design-space axis).
const (
	// DesignRadix is the x86-64 four-level radix page table with a
	// page-walk cache — the baseline design.
	DesignRadix = core.DesignRadix
	// DesignECH is the elastic cuckoo hash table (single-step hashed
	// translation).
	DesignECH = core.DesignECH
	// DesignHDC is hash, don't cache (hashed translation without PTE
	// caching).
	DesignHDC = core.DesignHDC
	// DesignHT is a conventional open-addressing hashed page table.
	DesignHT = core.DesignHT
	// DesignUtopia is Utopia's hybrid of flexible (radix) and
	// restrictive (RestSeg) address spaces.
	DesignUtopia = core.DesignUtopia
	// DesignRMM is redundant memory mappings: range translations backed
	// by eager paging.
	DesignRMM = core.DesignRMM
	// DesignMidgard is the Midgard intermediate address space (VMA-level
	// frontend translation, backend on demand).
	DesignMidgard = core.DesignMidgard
	// DesignDirectSeg is direct segments: one large segment bypasses
	// paging, a radix table covers the rest.
	DesignDirectSeg = core.DesignDirectSeg
)

// Allocation policies (§7.5's policy axis).
const (
	// PolicyBuddy is vanilla 4KB buddy allocation.
	PolicyBuddy = core.PolicyBuddy
	// PolicyTHP is Linux-style transparent huge pages (2MB when the
	// region allows, khugepaged collapse in the background).
	PolicyTHP = core.PolicyTHP
	// PolicyCRTHP is conservative reservation-based THP (upgrade a
	// region after half its 4KB pages are touched).
	PolicyCRTHP = core.PolicyCRTHP
	// PolicyARTHP is aggressive reservation-based THP (upgrade early).
	PolicyARTHP = core.PolicyARTHP
	// PolicyUtopia allocates through Utopia's RestSegs first.
	PolicyUtopia = core.PolicyUtopia
	// PolicyEager is eager paging: allocate whole ranges at mmap time
	// (the RMM design's companion policy).
	PolicyEager = core.PolicyEager
)

// Tier migration policies (tiered-memory hierarchies, see WithTiers).
const (
	// TierPolicyHotCold is the default multi-bit-heat policy: pages warm
	// up in steps on access, cool by halving on scan, and demotion depth
	// depends on remaining heat.
	TierPolicyHotCold = tier.PolicyHotCold
	// TierPolicyClock is a one-bit referenced/not-referenced policy
	// approximating Linux's active/inactive LRU split.
	TierPolicyClock = tier.PolicyClock
)

// DefaultConfig returns the paper's Table 4 Virtuoso+Sniper system.
func DefaultConfig() Config { return core.DefaultConfig() }

// ScaledConfig returns the proportionally scaled system the experiments
// use (see internal/experiments for the scaling methodology).
func ScaledConfig() Config {
	return experiments.BaseConfig(experiments.Opts{})
}

// Session is one opened simulation: an assembled system plus the
// workload — or, for multiprogrammed sessions, the workload mix — it
// will run. Sessions are single-use — Run/RunMulti consume the system
// state — and not safe for concurrent use; open one session per
// goroutine, or use Sweep, which does exactly that.
type Session struct {
	cfg Config
	sys *core.System
	w   *Workload
	mix []*Workload
	ran bool
}

// Open assembles a simulation session from the given options, starting
// from DefaultConfig. It returns an error when an option is invalid or
// the system cannot be built.
func Open(opts ...Option) (*Session, error) {
	st := openState{cfg: DefaultConfig()}
	for _, opt := range opts {
		if err := opt(&st); err != nil {
			return nil, err
		}
	}
	if st.custom == nil && st.wname == "" && len(st.mix) == 0 {
		return nil, fmt.Errorf("virtuoso: no workload selected (use WithWorkload, WithCustomWorkload, WithTrace, or WithProcesses)")
	}
	var w *Workload
	var mix []*Workload
	if len(st.mix) > 0 {
		var err error
		if mix, err = NamedMixWith(st.mix, st.params); err != nil {
			return nil, err
		}
	} else {
		w = st.custom
		if w == nil {
			var err error
			if w, err = NamedWorkloadWith(st.wname, st.params); err != nil {
				return nil, err
			}
		}
	}
	sys, err := core.NewSystem(st.cfg)
	if err != nil {
		return nil, err
	}
	if st.obs != nil {
		sys.SetObserver(st.obs.Observe, st.obsEvery)
	}
	return &Session{cfg: st.cfg, sys: sys, w: w, mix: mix}, nil
}

// Config returns the session's assembled configuration.
func (s *Session) Config() Config { return s.cfg }

// System exposes the underlying simulator for advanced use (installing
// custom OS policies, inspecting MimicOS state, driving RunSteps).
func (s *Session) System() *System { return s.sys }

// Workload returns the workload the session runs (nil for
// multiprogrammed sessions — see Mix).
func (s *Session) Workload() *Workload { return s.w }

// Mix returns the workloads of a multiprogrammed session in process
// order (nil for single-workload sessions).
func (s *Session) Mix() []*Workload { return s.mix }

// Run simulates the session's workload to completion (or the configured
// instruction bound) and returns the collected metrics.
func (s *Session) Run() (Metrics, error) { return s.RunContext(context.Background()) }

// RunContext is Run with cooperative cancellation: the simulation polls
// ctx every few thousand instructions and aborts with ctx's error when
// it is cancelled, discarding the truncated metrics.
func (s *Session) RunContext(ctx context.Context) (Metrics, error) {
	if len(s.mix) > 0 {
		return Metrics{}, fmt.Errorf("virtuoso: session was opened with WithProcesses; use RunMulti")
	}
	if s.ran {
		return Metrics{}, fmt.Errorf("virtuoso: session already run (sessions are single-use; Open a new one)")
	}
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	s.ran = true
	done := ctx.Done()
	s.sys.SetCancelCheck(func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
	// Uninstall the check afterwards: the system stays usable for
	// direct driving (RunSteps) and must not poll a dead context.
	defer s.sys.SetCancelCheck(nil)
	m := s.sys.Run(s.w)
	// Sessions are single-use: hand the kernel tracer's event buffer
	// to the next session now that the run is over.
	s.sys.ReleaseTransients()
	if s.sys.Interrupted() {
		// Only a run the cancellation actually stopped is discarded; a
		// cancel that lands after completion leaves the metrics whole.
		return Metrics{}, ctx.Err()
	}
	return m, nil
}

// RunMulti simulates a multiprogrammed session (opened with
// WithProcesses) to completion and returns aggregate plus per-process
// metrics. The run is deterministic: the same configuration yields
// byte-identical results on every execution, standalone or inside a
// parallel Sweep.
func (s *Session) RunMulti() (MultiMetrics, error) {
	return s.RunMultiContext(context.Background())
}

// RunMultiContext is RunMulti with cooperative cancellation.
func (s *Session) RunMultiContext(ctx context.Context) (MultiMetrics, error) {
	if len(s.mix) == 0 {
		return MultiMetrics{}, fmt.Errorf("virtuoso: session has a single workload; use Run (or open with WithProcesses)")
	}
	if s.ran {
		return MultiMetrics{}, fmt.Errorf("virtuoso: session already run (sessions are single-use; Open a new one)")
	}
	if err := ctx.Err(); err != nil {
		return MultiMetrics{}, err
	}
	s.ran = true
	done := ctx.Done()
	s.sys.SetCancelCheck(func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
	defer s.sys.SetCancelCheck(nil)
	mm, err := s.sys.RunMulti(s.mix)
	s.sys.ReleaseTransients()
	if err != nil {
		return MultiMetrics{}, err
	}
	if s.sys.Interrupted() {
		return MultiMetrics{}, ctx.Err()
	}
	return mm, nil
}

// Result packages the session's metrics with the configuration echo the
// sweep runner produces, for uniform JSON output. Index is always zero
// for session results — it identifies grid position only in sweep
// reports — so key downstream tooling on Result.Key(), not Index.
func (s *Session) Result(m Metrics) Result {
	return Result{
		Workload:   s.w.Name(),
		Design:     s.cfg.Design,
		Policy:     s.cfg.Policy,
		TierPolicy: tierPolicyEcho(s.cfg),
		Mode:       s.cfg.Mode.String(),
		Seed:       s.cfg.Seed,
		Metrics:    m,
	}
}

// MultiResult packages a multiprogrammed run's metrics as a Result:
// Metrics carries the aggregate, Multi the per-process breakdown, and
// Workload the "+"-joined mix name — the same shape sweep points with
// Mixes produce, so standalone and swept multiprogrammed runs are
// byte-comparable.
func (s *Session) MultiResult(mm MultiMetrics) Result {
	return Result{
		Workload:   core.MixName(mm.Mix),
		Design:     s.cfg.Design,
		Policy:     s.cfg.Policy,
		TierPolicy: tierPolicyEcho(s.cfg),
		Mode:       s.cfg.Mode.String(),
		Seed:       s.cfg.Seed,
		Metrics:    mm.Aggregate,
		Multi:      &mm,
	}
}

// NamedWorkload returns a Table 5 workload ("BC", "BFS", ..., "JSON",
// "Llama-2-7B", ...) built with the default parameters, or an error if
// the name is unknown.
func NamedWorkload(name string) (*Workload, error) {
	return NamedWorkloadWith(name, WorkloadParams{})
}

// NamedWorkloadWith returns a Table 5 workload — or one registered
// through the extension API (repro/ext) — built with explicit
// construction parameters. Explicit parameters are safe to vary across
// concurrent constructions (parallel sweeps build workloads inside
// their workers). The catalog is consulted first (with its forgiving
// matching), then the registry by exact name.
func NamedWorkloadWith(name string, p WorkloadParams) (*Workload, error) {
	if err := validateParams(p); err != nil {
		return nil, err
	}
	if w, ok := workloads.ByNameWith(name, p); ok {
		return w, nil
	}
	if w, ok, err := registry.NewWorkload(name, p); ok {
		if err != nil {
			return nil, fmt.Errorf("virtuoso: workload %q: %w", name, err)
		}
		if w == nil {
			return nil, fmt.Errorf("virtuoso: workload %q: constructor returned nil", name)
		}
		return w, nil
	}
	return nil, fmt.Errorf("virtuoso: unknown workload %q", name)
}

// NamedMixWith builds one fresh workload per name for a multiprogrammed
// mix — the shared construction path behind WithProcesses, Sweep.Mixes,
// and the multiprogramming experiments. Catalog and registered
// workloads mix freely; each call returns new instances, so concurrent
// runs never share mutable workload state.
func NamedMixWith(names []string, p WorkloadParams) ([]*Workload, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("virtuoso: empty workload mix")
	}
	ws := make([]*Workload, len(names))
	for i, n := range names {
		w, err := NamedWorkloadWith(n, p)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	return ws, nil
}

// validateParams rejects parameter values that would silently build a
// nonsensical workload (a negative scale wraps the footprint conversion
// into exabytes).
func validateParams(p WorkloadParams) error {
	if p.Scale < 0 {
		return fmt.Errorf("virtuoso: workload scale %v must not be negative", p.Scale)
	}
	if p.LongIters < 0 {
		return fmt.Errorf("virtuoso: workload iterations %d must not be negative", p.LongIters)
	}
	return nil
}

// LongRunningSuite returns the Table 5 long-running workloads.
func LongRunningSuite() []*Workload { return workloads.LongSuite() }

// ShortRunningSuite returns the Table 5 short-running workloads.
func ShortRunningSuite() []*Workload { return workloads.ShortSuite() }

// ExtraWorkloads returns the catalog extras outside the Table 5 suites
// (e.g. "SEQ"), usable by name anywhere a suite workload is — most
// relevantly in multiprogrammed mixes.
func ExtraWorkloads() []*Workload { return workloads.ExtraSuite() }
