package virtuoso

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/tier"
	"repro/internal/trace"
)

// Option configures a Session being built by Open. Options are applied
// in order; the last write to a field wins. An option that receives an
// invalid value records an error, and Open reports the first one.
type Option func(*openState) error

// openState accumulates the configuration Open assembles. The named
// workload (or mix) is only looked up once every option has been
// applied, so WithWorkloadScale takes effect regardless of option
// order.
type openState struct {
	cfg      Config
	wname    string
	custom   *Workload
	mix      []string
	params   WorkloadParams
	obs      Observer
	obsEvery uint64
}

// KnownDesigns returns every selectable translation design name: the
// eight built-ins followed by designs registered through the public
// extension API (repro/ext), sorted within each group.
func KnownDesigns() []DesignName {
	out := []DesignName{
		DesignRadix, DesignECH, DesignHDC, DesignHT,
		DesignUtopia, DesignRMM, DesignMidgard, DesignDirectSeg,
	}
	for _, name := range registry.DesignNames() {
		out = append(out, DesignName(name))
	}
	return out
}

// KnownPolicies returns every selectable allocation policy name: the
// six built-ins followed by policies registered through the public
// extension API (repro/ext), sorted within each group.
func KnownPolicies() []PolicyName {
	out := []PolicyName{
		PolicyBuddy, PolicyTHP, PolicyCRTHP, PolicyARTHP,
		PolicyUtopia, PolicyEager,
	}
	for _, name := range registry.PolicyNames() {
		out = append(out, PolicyName(name))
	}
	return out
}

// KnownTierPolicies returns every selectable tier migration policy
// name: the built-ins ("clock", "hotcold") followed by policies
// registered through the public extension API (repro/ext), sorted
// within each group.
func KnownTierPolicies() []string {
	out := tier.BuiltinNames()
	return append(out, registry.TierPolicyNames()...)
}

// ParseTierPolicy validates a tier migration policy name: a built-in
// or one registered through the extension API. The empty string is
// valid and selects the default (TierPolicyHotCold) when tiers are
// configured.
func ParseTierPolicy(name string) (string, error) {
	if name == "" {
		return "", nil
	}
	for _, p := range KnownTierPolicies() {
		if p == name {
			return p, nil
		}
	}
	return "", fmt.Errorf("virtuoso: unknown tier policy %q (known: %v)", name, KnownTierPolicies())
}

// ValidateTierSpecs checks a slow-tier list the way Open and sweep-spec
// parsing do: non-empty unique names (with "dram" and "swap" reserved
// for the implicit fast and terminal tiers), at least one page of
// capacity, and non-zero access latencies. A nil or empty list — flat
// memory — is valid.
func ValidateTierSpecs(specs []TierSpec) error { return tier.ValidateSpecs(specs) }

// RegisteredWorkloads returns the names of workloads registered through
// the public extension API (repro/ext), sorted. Catalog workloads are
// enumerated by LongRunningSuite, ShortRunningSuite, and ExtraWorkloads.
func RegisteredWorkloads() []string { return registry.WorkloadNames() }

// ParseDesign validates a translation design name: a built-in ("radix",
// "ech", "hdc", "ht", "utopia", "rmm", "midgard", "directseg") or one
// registered through the extension API.
func ParseDesign(name string) (DesignName, error) {
	for _, d := range KnownDesigns() {
		if string(d) == name {
			return d, nil
		}
	}
	return "", fmt.Errorf("virtuoso: unknown design %q (known: %v)", name, KnownDesigns())
}

// ParsePolicy validates an allocation policy name: a built-in ("bd",
// "thp", "cr-thp", "ar-thp", "utopia", "eager") or one registered
// through the extension API.
func ParsePolicy(name string) (PolicyName, error) {
	for _, p := range KnownPolicies() {
		if string(p) == name {
			return p, nil
		}
	}
	return "", fmt.Errorf("virtuoso: unknown policy %q (known: %v)", name, KnownPolicies())
}

// ParseMode validates an OS-methodology name ("imitation" or
// "emulation").
func ParseMode(name string) (Mode, error) {
	switch name {
	case "imitation":
		return Imitation, nil
	case "emulation":
		return Emulation, nil
	}
	return Imitation, fmt.Errorf("virtuoso: unknown mode %q (known: imitation, emulation)", name)
}

// WithConfig replaces the entire base configuration (default:
// DefaultConfig). Apply it before field-level options, which otherwise
// get overwritten.
func WithConfig(cfg Config) Option {
	return func(s *openState) error {
		s.cfg = cfg
		return nil
	}
}

// WithScaledConfig starts from the proportionally scaled system the
// experiments use instead of the full Table 4 system — simulations
// finish in seconds rather than minutes.
func WithScaledConfig() Option {
	return func(s *openState) error {
		s.cfg = ScaledConfig()
		return nil
	}
}

// WithDesign selects the translation design under study — a built-in
// or one registered through the extension API (repro/ext).
func WithDesign(d DesignName) Option {
	return func(s *openState) error {
		if _, err := ParseDesign(string(d)); err != nil {
			return err
		}
		s.cfg.Design = d
		return nil
	}
}

// WithPolicy selects the physical memory allocation policy — a
// built-in or one registered through the extension API (repro/ext).
func WithPolicy(p PolicyName) Option {
	return func(s *openState) error {
		if _, err := ParsePolicy(string(p)); err != nil {
			return err
		}
		s.cfg.Policy = p
		return nil
	}
}

// WithTiers configures a tiered physical memory hierarchy: DRAM plus
// the given slow tiers in fall-back order, with the swap device (when
// configured) as the implicit terminal tier. Cold pages demote down
// the hierarchy under DRAM pressure; a fault on a slow-tier page is
// the promotion hint that migrates it back to DRAM, with migration
// cost charged to simulated time. Passing no specs restores flat
// memory. The specs are validated here, so Open reports a bad
// hierarchy before any simulation starts.
func WithTiers(specs ...TierSpec) Option {
	return func(s *openState) error {
		if err := ValidateTierSpecs(specs); err != nil {
			return err
		}
		s.cfg.OSCfg.Tiers = append([]TierSpec(nil), specs...)
		return nil
	}
}

// WithTierPolicy selects the tier migration policy — a built-in
// (TierPolicyHotCold, TierPolicyClock) or one registered through the
// extension API (repro/ext). It only has effect together with
// WithTiers; Open rejects a policy set on a flat-memory config.
func WithTierPolicy(name string) Option {
	return func(s *openState) error {
		p, err := ParseTierPolicy(name)
		if err != nil {
			return err
		}
		s.cfg.OSCfg.TierPolicy = p
		return nil
	}
}

// WithMode selects the OS-simulation methodology (Imitation or
// Emulation).
func WithMode(m Mode) Option {
	return func(s *openState) error {
		if m != Imitation && m != Emulation {
			return fmt.Errorf("virtuoso: unknown mode %d", m)
		}
		s.cfg.Mode = m
		return nil
	}
}

// WithWorkload selects the Table 5 workload the session runs, by name.
func WithWorkload(name string) Option {
	return func(s *openState) error {
		if _, err := NamedWorkload(name); err != nil {
			return err
		}
		s.wname, s.custom, s.mix = name, nil, nil
		s.displaceTrace()
		return nil
	}
}

// WithProcesses turns the session multiprogrammed: each named workload
// becomes one concurrent process in its own address space, interleaved
// by the MimicOS round-robin scheduler (see WithQuantum and
// WithASIDRetention). The session then runs through RunMulti. Like the
// other workload selectors, the last selection wins: WithProcesses
// displaces an earlier WithWorkload/WithCustomWorkload/WithTrace and
// vice versa.
func WithProcesses(names ...string) Option {
	return func(s *openState) error {
		if len(names) == 0 {
			return fmt.Errorf("virtuoso: WithProcesses needs at least one workload")
		}
		for _, n := range names {
			if _, err := NamedWorkload(n); err != nil {
				return err
			}
		}
		s.mix = append([]string(nil), names...)
		s.wname, s.custom = "", nil
		s.displaceTrace()
		return nil
	}
}

// WithQuantum sets the multiprogrammed scheduler's round-robin time
// slice in simulated cycles (0 keeps the default).
func WithQuantum(cycles uint64) Option {
	return func(s *openState) error {
		s.cfg.QuantumCycles = cycles
		return nil
	}
}

// WithASIDRetention selects whether the TLB hierarchy retains entries
// across context switches, isolated by ASID tags (true), or flushes on
// every switch like an untagged TLB (false, the default). Only
// multiprogrammed runs switch contexts, so single-workload sessions
// are unaffected.
func WithASIDRetention(retain bool) Option {
	return func(s *openState) error {
		s.cfg.ASIDRetention = retain
		return nil
	}
}

// displaceTrace undoes an earlier WithTrace when a later option selects
// a different workload: the trace no longer drives the stream, and a
// frontend left on the trace-driven setting would silently materialise
// the whole synthetic stream in memory instead of executing it.
func (s *openState) displaceTrace() {
	if s.cfg.TracePath == "" {
		return
	}
	s.cfg.TracePath = ""
	if s.cfg.Frontend == core.FrontendTrace || s.cfg.Frontend == core.FrontendMemTrace {
		s.cfg.Frontend = core.FrontendExec
	}
}

// WithCustomWorkload attaches a user-built workload (see
// workloads.Custom) instead of a named one.
func WithCustomWorkload(w *Workload) Option {
	return func(s *openState) error {
		if w == nil {
			return fmt.Errorf("virtuoso: nil workload")
		}
		s.custom, s.wname, s.mix = w, w.Name(), nil
		s.displaceTrace()
		return nil
	}
}

// WithReferencePath forces runs onto the unbatched per-instruction
// reference loop instead of the batched fast lane. Both produce
// byte-identical Results; the knob exists so the equivalence is
// testable and a fast-lane regression can be bisected.
func WithReferencePath(on bool) Option {
	return func(s *openState) error {
		s.cfg.ReferencePath = on
		return nil
	}
}

// WithSeed sets the simulation seed.
func WithSeed(seed uint64) Option {
	return func(s *openState) error {
		s.cfg.Seed = seed
		return nil
	}
}

// WithMaxInstructions bounds the run to n application instructions
// (0 = run the workload to completion).
func WithMaxInstructions(n uint64) Option {
	return func(s *openState) error {
		s.cfg.MaxAppInsts = n
		return nil
	}
}

// WithFragmentation initialises physical memory with the given fraction
// of 2MB blocks unavailable, the paper's fragmentation convention
// (Table 4's baseline is 0.80). Must be in [0, 1].
func WithFragmentation(frag float64) Option {
	return func(s *openState) error {
		if frag < 0 || frag > 1 {
			return fmt.Errorf("virtuoso: fragmentation %v out of range [0, 1]", frag)
		}
		s.cfg.FragFree2M = 1 - frag
		return nil
	}
}

// WithWorkloadScale rescales the session's workload footprint (1.0 =
// the library's reference sizes). The scale is threaded through this
// session's workload construction only — no process-global state is
// touched, so sessions at different scales can be opened and run
// concurrently.
func WithWorkloadScale(scale float64) Option {
	return func(s *openState) error {
		if scale <= 0 {
			return fmt.Errorf("virtuoso: workload scale %v must be positive", scale)
		}
		s.params.Scale = scale
		return nil
	}
}

// WithWorkloadParams sets all workload-construction parameters at once
// (footprint scale, long-running iteration count). Zero-valued fields
// keep the library defaults. Like WithWorkloadScale, the parameters
// apply to this session only.
func WithWorkloadParams(p WorkloadParams) Option {
	return func(s *openState) error {
		if err := validateParams(p); err != nil {
			return err
		}
		s.params = p
		return nil
	}
}

// WithFrontend selects how application instructions reach the core
// model: FrontendExec (default), FrontendTrace, FrontendMemTrace, or
// FrontendEmu. The trace-driven frontends stream from a recorded file
// when one is attached with WithTrace.
func WithFrontend(f Frontend) Option {
	return func(s *openState) error {
		switch f {
		case FrontendExec, FrontendTrace, FrontendMemTrace, FrontendEmu:
			s.cfg.Frontend = f
			return nil
		}
		return fmt.Errorf("virtuoso: unknown frontend %d", f)
	}
}

// WithObserver streams interval Snapshots of the run's counters to o:
// one snapshot roughly every ObserveInterval application instructions
// (default core's DefaultObserveEvery) and a closing one, with Final
// set, when the run completes. Observation is read-only — an observed
// run produces byte-identical results to an unobserved one — which is
// what makes progress bars, live dashboards, and early-abort heuristics
// (cancel the context from outside when an observer spots a hopeless
// trend) safe to attach. The callback runs on the simulation goroutine;
// keep it cheap.
func WithObserver(o Observer) Option {
	return func(s *openState) error {
		if o == nil {
			return fmt.Errorf("virtuoso: nil observer")
		}
		s.obs = o
		return nil
	}
}

// WithObserveInterval sets the observer snapshot interval in
// application instructions (0 keeps the default). It only has effect
// together with WithObserver.
func WithObserveInterval(every uint64) Option {
	return func(s *openState) error {
		s.obsEvery = every
		return nil
	}
}

// WithTrace replays a trace file recorded with Session.Record (or the
// `virtuoso trace record` command) instead of generating a synthetic
// workload: the session's workload becomes a trace-backed one whose
// Setup re-creates the recorded address-space layout and whose
// instruction stream is read from the file as the simulation advances —
// the whole trace is never held in memory. The frontend switches to
// FrontendTrace unless an earlier option already chose FrontendMemTrace
// (combine with WithFrontend(FrontendMemTrace) for Ramulator-style
// memory-only replay).
//
// The file is validated here, so Open reports a missing or corrupt
// trace before any simulation starts. Replaying with the same
// configuration and seed as the recording run reproduces that run's
// Result exactly (modulo host-side wall time and heap fields).
func WithTrace(path string) Option {
	return func(s *openState) error {
		w, err := trace.NewWorkload(path)
		if err != nil {
			return err
		}
		s.custom, s.wname, s.mix = w, w.Name(), nil
		s.cfg.TracePath = path
		if s.cfg.Frontend != core.FrontendMemTrace {
			s.cfg.Frontend = core.FrontendTrace
		}
		return nil
	}
}

// WithTraceStore serves the session's trace replay (WithTrace) from the
// given shared decoded-trace store instead of decoding the file
// inline: the first session replaying a trace content decodes it once,
// later sessions sharing the store stream from memory. Results are
// byte-identical either way. For whole grids, set Sweep.Traces instead.
func WithTraceStore(ts *TraceStore) Option {
	return func(s *openState) error {
		if ts == nil {
			return fmt.Errorf("virtuoso: nil trace store")
		}
		s.cfg.TraceShared = ts.shared
		return nil
	}
}
